package appgen

// Regression tests for the per-outcome wall-time rollup split: the
// headline corpus time aggregate must describe completed apps only,
// with panic-recovered and deadline-truncated apps rolled up under
// their own outcome keys instead of silently blended into the means.

import (
	"context"
	"strings"
	"testing"
	"time"

	"flowdroid/internal/core"
)

// TestRollupObserve: the rollup arithmetic itself.
func TestRollupObserve(t *testing.T) {
	var r TimeRollup
	r.observe("a", 4*time.Millisecond)
	r.observe("b", 10*time.Millisecond)
	r.observe("c", 1*time.Millisecond)
	if r.Apps != 3 || r.Total != 15*time.Millisecond {
		t.Errorf("apps %d total %v, want 3 and 15ms", r.Apps, r.Total)
	}
	if r.Min != 1*time.Millisecond || r.Max != 10*time.Millisecond || r.Slowest != "b" {
		t.Errorf("min %v max %v slowest %q, want 1ms/10ms/b", r.Min, r.Max, r.Slowest)
	}
	if r.Avg() != 5*time.Millisecond {
		t.Errorf("avg = %v, want 5ms", r.Avg())
	}
	if (TimeRollup{}).Avg() != 0 {
		t.Error("empty rollup Avg must be 0")
	}
}

// TestCorpusRollupSplitOnPanic: an injected panic must put the victim's
// wall time into the Recovered rollup and keep it out of the completed
// aggregate — which must cover exactly the other apps.
func TestCorpusRollupSplitOnPanic(t *testing.T) {
	const n, seed = 6, 7
	apps := GenerateCorpus(Play, n, seed)
	victim := apps[2].Name

	stats, err := RunCorpusWith(context.Background(), Play, n, seed, RunOptions{FaultInject: victim})
	if err != nil {
		t.Fatal(err)
	}
	comp := stats.Times[core.Complete.String()]
	if comp == nil || comp.Apps != n-1 {
		t.Fatalf("completed rollup = %+v, want %d apps", comp, n-1)
	}
	rec := stats.Times[core.Recovered.String()]
	if rec == nil || rec.Apps != 1 || rec.Slowest != victim {
		t.Fatalf("recovered rollup = %+v, want the victim %s alone", rec, victim)
	}
	if stats.SlowestApp == victim {
		t.Errorf("SlowestApp names the panicked victim; its time leaked into the completed aggregate")
	}
	if comp.Total != stats.TotalTime || comp.Max != stats.MaxTime || comp.Min != stats.MinTime {
		t.Errorf("headline aggregate (total %v min %v max %v) diverges from the completed rollup (%+v)",
			stats.TotalTime, stats.MinTime, stats.MaxTime, comp)
	}
	if stats.AvgTime() != comp.Avg() {
		t.Errorf("AvgTime() = %v, want the completed apps' mean %v", stats.AvgTime(), comp.Avg())
	}
	if !strings.Contains(stats.Render(), "analysis time (Recovered)") {
		t.Errorf("summary does not render the Recovered rollup:\n%s", stats.Render())
	}
}

// TestCorpusRollupSplitOnTimeout: with every app timed out, the
// completed rollup stays empty, the DeadlineExceeded rollup holds all
// apps, and AvgTime falls back to the all-apps mean rather than
// dividing by zero.
func TestCorpusRollupSplitOnTimeout(t *testing.T) {
	const n = 3
	stats, err := RunCorpusWith(context.Background(), Play, n, 7, RunOptions{Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if comp := stats.Times[core.Complete.String()]; comp != nil && comp.Apps != 0 {
		t.Errorf("completed rollup holds %d timed-out apps", comp.Apps)
	}
	to := stats.Times[core.DeadlineExceeded.String()]
	if to == nil || to.Apps != n {
		t.Fatalf("deadline rollup = %+v, want all %d apps", to, n)
	}
	if stats.TotalTime != 0 || stats.SlowestApp != "" {
		t.Errorf("headline aggregate polluted by timed-out apps: total %v slowest %q", stats.TotalTime, stats.SlowestApp)
	}
	if stats.AvgTime() <= 0 {
		t.Errorf("AvgTime() = %v with every app truncated, want the all-apps fallback mean", stats.AvgTime())
	}
}

// TestCorpusPassTimeAggregation: a clean corpus run must surface a
// slowest-pass table whose entries cover the pipeline's passes.
func TestCorpusPassTimeAggregation(t *testing.T) {
	stats, err := RunCorpusWith(context.Background(), Play, 3, 7, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.PassTimes) == 0 {
		t.Fatal("no pass times aggregated")
	}
	for _, pass := range []string{"callgraph", "taint"} {
		if _, ok := stats.PassTimes[pass]; !ok {
			t.Errorf("pass %q missing from the aggregated times %v", pass, stats.PassTimes)
		}
	}
	if !strings.Contains(stats.Render(), "slowest passes") {
		t.Errorf("summary does not render the slowest-pass table:\n%s", stats.Render())
	}
}
