package appgen

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"flowdroid/internal/core"
)

// CorpusStats aggregates an RQ3 corpus run.
type CorpusStats struct {
	Profile       string
	Apps          int
	AppsWithLeaks int
	TotalFound    int
	TotalInjected int
	BySink        map[string]int

	MinTime, MaxTime, TotalTime time.Duration
	SlowestApp                  string
	Errors                      int
}

// AvgLeaksPerApp is the paper's "1.85 leaks per application" figure.
func (s CorpusStats) AvgLeaksPerApp() float64 {
	if s.Apps == 0 {
		return 0
	}
	return float64(s.TotalFound) / float64(s.Apps)
}

// AvgTime is the mean per-app analysis time.
func (s CorpusStats) AvgTime() time.Duration {
	if s.Apps == 0 {
		return 0
	}
	return s.TotalTime / time.Duration(s.Apps)
}

// RunCorpus generates and analyzes n apps of a profile with FlowDroid's
// default configuration.
func RunCorpus(p Profile, n int, seed int64) (CorpusStats, error) {
	stats := CorpusStats{Profile: p.Name, BySink: make(map[string]int)}
	for _, app := range GenerateCorpus(p, n, seed) {
		start := time.Now()
		res, err := core.AnalyzeFiles(app.Files, core.DefaultOptions())
		el := time.Since(start)
		if err != nil {
			return stats, fmt.Errorf("appgen: %s: %w", app.Name, err)
		}
		leaks := res.Leaks()
		stats.Apps++
		stats.TotalInjected += app.InjectedLeaks
		stats.TotalFound += len(leaks)
		if len(leaks) > 0 {
			stats.AppsWithLeaks++
		}
		for _, l := range leaks {
			stats.BySink[l.SinkSpec.Label]++
		}
		stats.TotalTime += el
		if stats.MinTime == 0 || el < stats.MinTime {
			stats.MinTime = el
		}
		if el > stats.MaxTime {
			stats.MaxTime = el
			stats.SlowestApp = app.Name
		}
	}
	return stats, nil
}

// Render prints the RQ3 summary in the style of Section 6.3.
func (s CorpusStats) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "corpus %q: %d apps analyzed\n", s.Profile, s.Apps)
	fmt.Fprintf(&sb, "  apps with at least one leak: %d (%.0f%%)\n",
		s.AppsWithLeaks, 100*float64(s.AppsWithLeaks)/float64(max(1, s.Apps)))
	fmt.Fprintf(&sb, "  leaks found: %d (injected ground truth: %d), %.2f leaks/app\n",
		s.TotalFound, s.TotalInjected, s.AvgLeaksPerApp())
	fmt.Fprintf(&sb, "  analysis time: avg %v, min %v, max %v (slowest: %s)\n",
		s.AvgTime().Round(time.Microsecond), s.MinTime.Round(time.Microsecond),
		s.MaxTime.Round(time.Microsecond), s.SlowestApp)
	var sinks []string
	for k := range s.BySink {
		sinks = append(sinks, k)
	}
	sort.Strings(sinks)
	for _, k := range sinks {
		fmt.Fprintf(&sb, "  leaks into %-12s %d\n", k+":", s.BySink[k])
	}
	return sb.String()
}

// WriteApp materializes a generated app as an on-disk package under dir,
// in the layout cmd/flowdroid accepts (AndroidManifest.xml, res/layout/,
// classes.ir).
func WriteApp(app App, dir string) error {
	for p, content := range app.Files {
		full := filepath.Join(dir, filepath.FromSlash(p))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return fmt.Errorf("appgen: %w", err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			return fmt.Errorf("appgen: %w", err)
		}
	}
	return nil
}

// ExportCorpus generates n apps and writes each into its own subdirectory
// of root, returning the generated apps.
func ExportCorpus(p Profile, n int, seed int64, root string) ([]App, error) {
	apps := GenerateCorpus(p, n, seed)
	for _, app := range apps {
		if err := WriteApp(app, filepath.Join(root, app.Name)); err != nil {
			return nil, err
		}
	}
	return apps, nil
}
