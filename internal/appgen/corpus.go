package appgen

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"flowdroid/internal/core"
)

// TimeRollup aggregates per-app wall times for one outcome class.
// Splitting the rollups by outcome keeps the headline mean honest: a
// deadline-truncated app's time is capped by the timeout and a
// panic-recovered app stops mid-flight, so blending either into the
// completed apps' mean silently skews it.
type TimeRollup struct {
	Apps            int
	Min, Max, Total time.Duration
	Slowest         string
}

func (r *TimeRollup) observe(app string, el time.Duration) {
	r.Apps++
	r.Total += el
	if r.Min == 0 || el < r.Min {
		r.Min = el
	}
	if el > r.Max {
		r.Max = el
		r.Slowest = app
	}
}

// Avg is the mean per-app wall time of this outcome class.
func (r TimeRollup) Avg() time.Duration {
	if r.Apps == 0 {
		return 0
	}
	return r.Total / time.Duration(r.Apps)
}

// CorpusStats aggregates an RQ3 corpus run.
type CorpusStats struct {
	Profile       string
	Apps          int
	AppsWithLeaks int
	TotalFound    int
	TotalInjected int
	BySink        map[string]int

	// MinTime/MaxTime/TotalTime/SlowestApp describe apps whose analysis
	// ran to completion only; truncated and recovered apps are rolled up
	// separately in Times so they cannot distort the aggregate means.
	MinTime, MaxTime, TotalTime time.Duration
	SlowestApp                  string
	// Times holds one wall-time rollup per outcome, keyed by
	// core.Status.String() plus "Error" for load failures.
	Times  map[string]*TimeRollup
	Errors int

	// Resilience accounting: apps whose analysis was cut short. A
	// truncated or recovered app never aborts the batch; it is counted
	// here and detailed in Failures.
	Recovered   int
	TimedOut    int
	Exhausted   int
	LeakLimited int
	Degraded    int
	Failures    []string
	Incomplete  int // batch stopped early: apps never attempted

	// Passes aggregates the per-pass run/hit counters across all apps:
	// cache hits appear whenever the degradation ladder reused memoized
	// artifacts instead of rebuilding them.
	Passes core.PassStats
	// PassTimes sums each pipeline pass's build wall time across all
	// apps — the corpus-level slowest-pass table.
	PassTimes map[string]time.Duration

	// QueriedSinks echoes RunOptions.Sinks; non-empty means the corpus
	// ran in demand-driven query mode and the cone aggregates below are
	// meaningful.
	QueriedSinks []string
	// ConeMethods/SkippedComponents sum each app's reachability-cone
	// size and skipped-component count, aggregated like the pass
	// counters above.
	ConeMethods       int
	SkippedComponents int

	// ReflectionResolved/ReflectionUnresolved sum each app's soundness
	// accounting: reflective sites resolved into call edges versus left
	// opaque (both zero under RunOptions.NoReflection).
	ReflectionResolved   int
	ReflectionUnresolved int
}

// RunOptions bound and harden a corpus run. The zero value reproduces
// the unbounded historical behaviour.
type RunOptions struct {
	// Timeout bounds each app's analysis (0 = none).
	Timeout time.Duration
	// MaxPropagations is the per-app taint propagation budget (0 =
	// unlimited).
	MaxPropagations int
	// Degrade enables the CHA/access-path degradation ladder on budget
	// exhaustion.
	Degrade bool
	// Workers is the per-app taint solver worker-pool size (<=1 =
	// sequential). The aggregated leak statistics are worker-count-
	// independent.
	Workers int
	// FaultInject names an app whose analysis is made to panic, for
	// exercising the batch isolation path (chaos testing).
	FaultInject string
	// Lint runs the IR verifier before each app's solvers; apps with
	// Error diagnostics roll up under the InvalidProgram status.
	Lint bool
	// Sinks restricts each app's analysis to the named sink selectors
	// (demand-driven query mode); empty analyzes all sinks.
	Sinks []string
	// SummaryDir, when non-empty, runs every app through the persistent
	// method-summary store rooted there (see internal/summarystore): a
	// second corpus run over the same or lightly mutated apps re-analyzes
	// warm. Leak statistics are store-independent.
	SummaryDir string
	// NoStringCarriers disables the string-carrier fast path (kill
	// switch; see taint.Config.StringCarriers).
	NoStringCarriers bool
	// NoReflection disables the reflection-resolving constant-propagation
	// pass (kill switch; see core.Options.ResolveReflection). Reflective
	// leaks planted by the reflection profile go unfound under it.
	NoReflection bool
}

// AvgLeaksPerApp is the paper's "1.85 leaks per application" figure.
func (s CorpusStats) AvgLeaksPerApp() float64 {
	if s.Apps == 0 {
		return 0
	}
	return float64(s.TotalFound) / float64(s.Apps)
}

// AvgTime is the mean per-app analysis time over completed apps. When
// nothing completed it falls back to the mean over all attempted apps,
// so a fully truncated corpus still reports a meaningful figure.
func (s CorpusStats) AvgTime() time.Duration {
	if r, ok := s.Times[core.Complete.String()]; ok && r.Apps > 0 {
		return r.Avg()
	}
	if s.Apps == 0 {
		return 0
	}
	var total time.Duration
	for _, r := range s.Times {
		total += r.Total
	}
	return total / time.Duration(s.Apps)
}

// timeRollup returns (creating if needed) the rollup for an outcome key.
func (s *CorpusStats) timeRollup(key string) *TimeRollup {
	r := s.Times[key]
	if r == nil {
		r = &TimeRollup{}
		s.Times[key] = r
	}
	return r
}

// RunCorpus generates and analyzes n apps of a profile with FlowDroid's
// default configuration and no per-app bounds.
func RunCorpus(p Profile, n int, seed int64) (CorpusStats, error) {
	return RunCorpusWith(context.Background(), p, n, seed, RunOptions{})
}

// RunCorpusWith generates and analyzes n apps under the given bounds.
// Per-app failures — panics, timeouts, exhausted budgets, load errors —
// are isolated: the offending app is counted and described in
// stats.Failures while the rest of the batch proceeds normally. The
// batch-level context stops the whole run early; apps never attempted
// are counted in stats.Incomplete.
func RunCorpusWith(ctx context.Context, p Profile, n int, seed int64, ro RunOptions) (CorpusStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	stats := CorpusStats{
		Profile:      p.Name,
		BySink:       make(map[string]int),
		Passes:       make(core.PassStats),
		PassTimes:    make(map[string]time.Duration),
		Times:        make(map[string]*TimeRollup),
		QueriedSinks: ro.Sinks,
	}
	apps := GenerateCorpus(p, n, seed)
	for i, app := range apps {
		if ctx.Err() != nil {
			stats.Incomplete = len(apps) - i
			break
		}
		start := time.Now()
		res, err := analyzeOne(ctx, app, ro)
		el := time.Since(start)
		stats.Apps++
		stats.TotalInjected += app.InjectedLeaks
		if err != nil {
			// The wall time of a failed app goes into its own rollup, never
			// into the completed-apps aggregate.
			if pe, ok := err.(*panicErr); ok {
				stats.timeRollup(core.Recovered.String()).observe(app.Name, el)
				stats.Recovered++
				stats.Failures = append(stats.Failures, fmt.Sprintf("%s: recovered from %v", app.Name, pe.value))
			} else {
				stats.timeRollup("Error").observe(app.Name, el)
				stats.Errors++
				stats.Failures = append(stats.Failures, fmt.Sprintf("%s: %v", app.Name, err))
			}
			continue
		}
		stats.timeRollup(res.Status.String()).observe(app.Name, el)
		if res.Status == core.Complete {
			stats.TotalTime += el
			if stats.MinTime == 0 || el < stats.MinTime {
				stats.MinTime = el
			}
			if el > stats.MaxTime {
				stats.MaxTime = el
				stats.SlowestApp = app.Name
			}
		}
		switch res.Status {
		case core.Recovered:
			stats.Recovered++
			stats.Failures = append(stats.Failures, fmt.Sprintf("%s: recovered from panic in stage %s", app.Name, res.Failure.Stage))
		case core.DeadlineExceeded:
			stats.TimedOut++
			stats.Failures = append(stats.Failures, fmt.Sprintf("%s: deadline exceeded (%d propagations done)", app.Name, res.Counters.Propagations))
		case core.BudgetExhausted:
			stats.Exhausted++
			stats.Failures = append(stats.Failures, fmt.Sprintf("%s: propagation budget exhausted", app.Name))
		case core.LeakLimitReached:
			stats.LeakLimited++
			stats.Failures = append(stats.Failures, fmt.Sprintf("%s: leak cap reached (truncated report)", app.Name))
		}
		if len(res.Degraded) > 0 {
			stats.Degraded++
		}
		for pass, st := range res.Passes {
			agg := stats.Passes[pass]
			agg.Runs += st.Runs
			agg.Hits += st.Hits
			stats.Passes[pass] = agg
		}
		for pass, d := range res.PassTimes {
			stats.PassTimes[pass] += d
		}
		stats.ConeMethods += res.Counters.ConeMethods
		stats.SkippedComponents += res.Counters.SkippedComponents
		stats.ReflectionResolved += res.Counters.ReflectionResolved
		stats.ReflectionUnresolved += res.Counters.ReflectionUnresolved
		leaks := res.Leaks()
		stats.TotalFound += len(leaks)
		if len(leaks) > 0 {
			stats.AppsWithLeaks++
		}
		for _, l := range leaks {
			stats.BySink[l.SinkSpec.Label]++
		}
	}
	return stats, nil
}

// panicErr marks a panic the batch driver recovered from itself (as
// opposed to one the core pipeline already converted into a Recovered
// result).
type panicErr struct{ value any }

func (e *panicErr) Error() string { return fmt.Sprintf("panic: %v", e.value) }

// analyzeOne analyzes a single app under the per-app bounds, converting
// any panic that escapes the core pipeline's own stage recovery (or is
// injected via RunOptions.FaultInject) into an error so the batch
// survives.
func analyzeOne(ctx context.Context, app App, ro RunOptions) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &panicErr{r}
		}
	}()
	if ro.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ro.Timeout)
		defer cancel()
	}
	if ro.FaultInject != "" && ro.FaultInject == app.Name {
		panic("appgen: injected fault in " + app.Name)
	}
	opts := core.DefaultOptions()
	opts.MaxPropagations = ro.MaxPropagations
	opts.Degrade = ro.Degrade
	opts.Taint.Workers = ro.Workers
	opts.Taint.StringCarriers = !ro.NoStringCarriers
	opts.ResolveReflection = !ro.NoReflection
	opts.Lint = ro.Lint
	opts.Query = core.Query{Sinks: ro.Sinks}
	opts.SummaryDir = ro.SummaryDir
	return core.AnalyzeFiles(ctx, app.Files, opts)
}

// Render prints the RQ3 summary in the style of Section 6.3.
func (s CorpusStats) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "corpus %q: %d apps analyzed\n", s.Profile, s.Apps)
	fmt.Fprintf(&sb, "  apps with at least one leak: %d (%.0f%%)\n",
		s.AppsWithLeaks, 100*float64(s.AppsWithLeaks)/float64(max(1, s.Apps)))
	fmt.Fprintf(&sb, "  leaks found: %d (injected ground truth: %d), %.2f leaks/app\n",
		s.TotalFound, s.TotalInjected, s.AvgLeaksPerApp())
	fmt.Fprintf(&sb, "  analysis time (completed apps): avg %v, min %v, max %v (slowest: %s)\n",
		s.AvgTime().Round(time.Microsecond), s.MinTime.Round(time.Microsecond),
		s.MaxTime.Round(time.Microsecond), s.SlowestApp)
	var outcomes []string
	for k, r := range s.Times {
		if k != core.Complete.String() && r.Apps > 0 {
			outcomes = append(outcomes, k)
		}
	}
	sort.Strings(outcomes)
	for _, k := range outcomes {
		r := s.Times[k]
		fmt.Fprintf(&sb, "  analysis time (%s): %d app(s), avg %v, max %v (slowest: %s)\n",
			k, r.Apps, r.Avg().Round(time.Microsecond), r.Max.Round(time.Microsecond), r.Slowest)
	}
	var sinks []string
	for k := range s.BySink {
		sinks = append(sinks, k)
	}
	sort.Strings(sinks)
	for _, k := range sinks {
		fmt.Fprintf(&sb, "  leaks into %-12s %d\n", k+":", s.BySink[k])
	}
	if s.ReflectionResolved+s.ReflectionUnresolved > 0 {
		fmt.Fprintf(&sb, "  reflection: %d site(s) resolved into call edges, %d left opaque (see soundness reports)\n",
			s.ReflectionResolved, s.ReflectionUnresolved)
	}
	if len(s.QueriedSinks) > 0 {
		fmt.Fprintf(&sb, "  sink query [%s]: reachability cone %d method(s), %d component(s) skipped (summed across apps)\n",
			strings.Join(s.QueriedSinks, ", "), s.ConeMethods, s.SkippedComponents)
	}
	if len(s.Passes) > 0 {
		fmt.Fprintf(&sb, "  pipeline passes: %d runs, %d artifact reuses (%s)\n",
			s.Passes.TotalRuns(), s.Passes.TotalHits(), s.Passes)
	}
	if len(s.PassTimes) > 0 {
		type pt struct {
			name string
			d    time.Duration
		}
		table := make([]pt, 0, len(s.PassTimes))
		for name, d := range s.PassTimes {
			table = append(table, pt{name, d})
		}
		sort.Slice(table, func(i, j int) bool {
			if table[i].d != table[j].d {
				return table[i].d > table[j].d
			}
			return table[i].name < table[j].name
		})
		sb.WriteString("  slowest passes (total build time across apps):\n")
		for _, e := range table {
			fmt.Fprintf(&sb, "    %-12s %v\n", e.name+":", e.d.Round(time.Microsecond))
		}
	}
	if s.Recovered+s.TimedOut+s.Exhausted+s.LeakLimited+s.Errors+s.Degraded+s.Incomplete > 0 {
		fmt.Fprintf(&sb, "  abnormal outcomes: %d recovered, %d timed out, %d budget-exhausted, %d leak-capped, %d errors, %d degraded, %d never attempted\n",
			s.Recovered, s.TimedOut, s.Exhausted, s.LeakLimited, s.Errors, s.Degraded, s.Incomplete)
		for _, f := range s.Failures {
			fmt.Fprintf(&sb, "    %s\n", f)
		}
	}
	return sb.String()
}

// WriteApp materializes a generated app as an on-disk package under dir,
// in the layout cmd/flowdroid accepts (AndroidManifest.xml, res/layout/,
// classes.ir).
func WriteApp(app App, dir string) error {
	for p, content := range app.Files {
		full := filepath.Join(dir, filepath.FromSlash(p))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return fmt.Errorf("appgen: %w", err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			return fmt.Errorf("appgen: %w", err)
		}
	}
	return nil
}

// ExportCorpus generates n apps and writes each into its own subdirectory
// of root, returning the generated apps.
func ExportCorpus(p Profile, n int, seed int64, root string) ([]App, error) {
	apps := GenerateCorpus(p, n, seed)
	for _, app := range apps {
		if err := WriteApp(app, filepath.Join(root, app.Name)); err != nil {
			return nil, err
		}
	}
	return apps, nil
}
