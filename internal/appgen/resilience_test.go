package appgen

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestCorpusFaultIsolation: one app forced to panic mid-batch is reported
// as recovered while every other app is analyzed normally.
func TestCorpusFaultIsolation(t *testing.T) {
	const n, seed = 6, 7
	apps := GenerateCorpus(Play, n, seed)
	victim := apps[2].Name

	stats, err := RunCorpusWith(context.Background(), Play, n, seed, RunOptions{FaultInject: victim})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Apps != n {
		t.Errorf("analyzed %d apps, want %d (the panic must not abort the batch)", stats.Apps, n)
	}
	if stats.Recovered != 1 {
		t.Errorf("recovered = %d, want 1", stats.Recovered)
	}
	found := false
	for _, f := range stats.Failures {
		if strings.Contains(f, victim) {
			found = true
		}
	}
	if !found {
		t.Errorf("failures %v do not name the injected victim %s", stats.Failures, victim)
	}

	// The other apps must have produced their normal results: same leaks
	// as a clean run minus the victim's contribution.
	clean, err := RunCorpusWith(context.Background(), Play, n, seed, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Recovered != 0 || clean.Errors != 0 {
		t.Fatalf("clean run had abnormal outcomes: %+v", clean)
	}
	if want := clean.TotalFound - apps[2].InjectedLeaks; stats.TotalFound != want {
		t.Errorf("faulted batch found %d leaks, want %d (clean %d minus victim's %d)",
			stats.TotalFound, want, clean.TotalFound, apps[2].InjectedLeaks)
	}
	if summary := stats.Render(); !strings.Contains(summary, "abnormal outcomes") {
		t.Errorf("summary does not report abnormal outcomes:\n%s", summary)
	}
}

// TestCorpusPerAppTimeout: an absurdly small per-app deadline marks every
// app timed out; none crashes the batch.
func TestCorpusPerAppTimeout(t *testing.T) {
	const n = 3
	stats, err := RunCorpusWith(context.Background(), Play, n, 7, RunOptions{Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Apps != n {
		t.Errorf("analyzed %d apps, want %d", stats.Apps, n)
	}
	if stats.TimedOut != n {
		t.Errorf("timed out = %d, want %d", stats.TimedOut, n)
	}
}

// TestCorpusBatchCancellation: a dead batch context stops before the first
// app and accounts for the apps never attempted.
func TestCorpusBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := RunCorpusWith(ctx, Play, 4, 7, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Apps != 0 || stats.Incomplete != 4 {
		t.Errorf("apps = %d, incomplete = %d; want 0 and 4", stats.Apps, stats.Incomplete)
	}
}

// TestCorpusBudgetAndDegrade: a tiny per-app budget triggers exhaustion
// accounting, and enabling degradation records downgraded apps.
func TestCorpusBudgetAndDegrade(t *testing.T) {
	const n = 3
	stats, err := RunCorpusWith(context.Background(), Play, n, 7, RunOptions{MaxPropagations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Exhausted == 0 {
		t.Error("no app exhausted a 10-propagation budget")
	}
	degraded, err := RunCorpusWith(context.Background(), Play, n, 7, RunOptions{MaxPropagations: 10, Degrade: true})
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Degraded == 0 {
		t.Error("no app recorded a degraded configuration")
	}
}
