package appgen

import (
	"context"
	"math/rand"
	"testing"

	"flowdroid/internal/core"
)

func TestDeterminism(t *testing.T) {
	a := GenerateCorpus(Malware, 5, 42)
	b := GenerateCorpus(Malware, 5, 42)
	for i := range a {
		if a[i].Files["classes.ir"] != b[i].Files["classes.ir"] {
			t.Errorf("app %d differs between runs with the same seed", i)
		}
		if a[i].InjectedLeaks != b[i].InjectedLeaks {
			t.Errorf("app %d ground truth differs", i)
		}
	}
	c := GenerateCorpus(Malware, 5, 43)
	same := true
	for i := range a {
		if a[i].Files["classes.ir"] != c[i].Files["classes.ir"] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

// TestGroundTruthRecovered checks end to end, across a sample of both
// profiles, that the analysis finds exactly the injected flows: no false
// positives, no false negatives.
func TestGroundTruthRecovered(t *testing.T) {
	for _, p := range []Profile{Play, Malware} {
		apps := GenerateCorpus(p, 15, 7)
		for _, app := range apps {
			res, err := core.AnalyzeFiles(context.Background(), app.Files, core.DefaultOptions())
			if err != nil {
				t.Fatalf("%s: %v", app.Name, err)
			}
			if got := len(res.Leaks()); got != app.InjectedLeaks {
				t.Errorf("%s (%s): found %d leaks, injected %d (%v)",
					app.Name, p.Name, got, app.InjectedLeaks, app.LeakKinds)
			}
		}
	}
}

func TestProfileShapes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var playClasses, malClasses int
	const n = 40
	for i := 0; i < n; i++ {
		playClasses += Generate(r, Play, i).Classes
	}
	r = rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		malClasses += Generate(r, Malware, i).Classes
	}
	if playClasses <= malClasses {
		t.Errorf("play apps should be larger: %d vs %d classes", playClasses, malClasses)
	}
}

// TestMalwareCorpusStats reproduces the RQ3b shape: close to the paper's
// 1.85 leaks per malware sample, dominated by SMS and network sinks, with
// malware apps analyzing faster than Play apps.
func TestMalwareCorpusStats(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run is slow")
	}
	mal, err := RunCorpus(Malware, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mal.TotalFound != mal.TotalInjected {
		t.Errorf("found %d != injected %d", mal.TotalFound, mal.TotalInjected)
	}
	if avg := mal.AvgLeaksPerApp(); avg < 1.4 || avg > 2.3 {
		t.Errorf("malware leaks/app = %.2f, want ≈1.85", avg)
	}
	if mal.BySink["sms"] == 0 {
		t.Error("malware corpus should leak via SMS")
	}
	if mal.BySink["preferences"] != 0 {
		t.Error("malware profile should not produce preference leaks")
	}

	play, err := RunCorpus(Play, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if play.BySink["sms"] != 0 {
		t.Error("play corpus must not exfiltrate via SMS")
	}
	if play.BySink["log"] == 0 {
		t.Error("play corpus should show accidental log leaks")
	}
	if play.AvgTime() <= mal.AvgTime() {
		t.Logf("warning: play avg %v not slower than malware avg %v (small sample)",
			play.AvgTime(), mal.AvgTime())
	}
	t.Logf("\n%s\n%s", mal.Render(), play.Render())
}

// TestReflectionGroundTruthRecovered: with reflection resolution on (the
// default), every planted leak of the reflection profile — including the
// forName/getMethod/invoke chains and the StringBuilder-assembled
// variant — is found, genuinely dynamic chains surface as unresolved
// soundness entries instead of leaks, and no false positives appear.
func TestReflectionGroundTruthRecovered(t *testing.T) {
	apps := GenerateCorpus(Reflection, 15, 11)
	sawReflective, sawDynamic := false, false
	for _, app := range apps {
		res, err := core.AnalyzeFiles(context.Background(), app.Files, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if got := len(res.Leaks()); got != app.InjectedLeaks {
			t.Errorf("%s: found %d leaks, injected %d (%v)",
				app.Name, got, app.InjectedLeaks, app.LeakKinds)
		}
		if app.ReflectiveLeaks > 0 {
			sawReflective = true
			if res.Soundness == nil || res.Soundness.ResolvedSites == 0 {
				t.Errorf("%s: reflective leaks planted but no resolved sites reported", app.Name)
			}
		}
		if app.DynamicReflectiveChains > 0 {
			sawDynamic = true
			if res.Soundness == nil || len(res.Soundness.Unresolved) == 0 {
				t.Errorf("%s: dynamic chain planted but soundness report is empty", app.Name)
			}
		}
	}
	if !sawReflective || !sawDynamic {
		t.Fatalf("corpus sample exercised reflective=%t dynamic=%t; want both (adjust seed)",
			sawReflective, sawDynamic)
	}
}

// TestReflectionOffMissesReflectiveLeaks: the same corpus under
// -no-reflection finds exactly the non-reflective leaks — the soundness
// gap made measurable.
func TestReflectionOffMissesReflectiveLeaks(t *testing.T) {
	apps := GenerateCorpus(Reflection, 15, 11)
	opts := core.DefaultOptions()
	opts.ResolveReflection = false
	for _, app := range apps {
		res, err := core.AnalyzeFiles(context.Background(), app.Files, opts)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		want := app.InjectedLeaks - app.ReflectiveLeaks
		if got := len(res.Leaks()); got != want {
			t.Errorf("%s: reflection off found %d leaks, want %d of %d (%v)",
				app.Name, got, want, app.InjectedLeaks, app.LeakKinds)
		}
		if res.Soundness != nil {
			t.Errorf("%s: soundness report present with reflection off", app.Name)
		}
	}
}
