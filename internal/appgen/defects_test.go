package appgen

import (
	"context"
	"math/rand"
	"testing"

	"flowdroid/internal/core"
)

// lintedRun analyzes the app with the verifier on.
func lintedRun(t *testing.T, app App) *core.Result {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Lint = true
	res, err := core.AnalyzeFiles(context.Background(), app.Files, opts)
	if err != nil {
		t.Fatalf("%s: %v", app.Name, err)
	}
	return res
}

// TestDefectsAreDetected is the corpus-level positive test: every
// injectable defect is reported under its documented code, with the
// documented severity consequence (Error defects abort the analysis,
// Warning defects do not).
func TestDefectsAreDetected(t *testing.T) {
	base := Generate(rand.New(rand.NewSource(7)), Play, 0)
	for _, d := range Defects() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			res := lintedRun(t, d.Apply(base))
			if res.Lint == nil {
				t.Fatal("no lint result")
			}
			hits := res.Lint.ByCode(d.Code)
			if len(hits) == 0 {
				t.Fatalf("defect not reported under %s; diagnostics: %v", d.Code, res.Lint.Diagnostics)
			}
			for _, h := range hits {
				if h.File == "" {
					t.Errorf("diagnostic %v lacks a file position", h)
				}
			}
			if d.Error {
				if res.Status != core.InvalidProgram {
					t.Errorf("status = %v, want InvalidProgram for an Error defect", res.Status)
				}
			} else {
				if res.Status != core.Complete {
					t.Errorf("status = %v, want Complete for a Warning defect", res.Status)
				}
				if got := len(res.Leaks()); got != base.InjectedLeaks {
					t.Errorf("warning defect changed the leak count: got %d, want %d", got, base.InjectedLeaks)
				}
			}
		})
	}
}

// TestGeneratedAppsAreDefectFree is the corpus-level negative test:
// un-mutated generated apps are clean of every defect code (and of
// Error diagnostics entirely — the fixture-cleanliness invariant).
func TestGeneratedAppsAreDefectFree(t *testing.T) {
	for _, p := range []Profile{Play, Malware, Stress} {
		for _, app := range GenerateCorpus(p, 3, 11) {
			res := lintedRun(t, app)
			if res.Lint == nil {
				t.Fatal("no lint result")
			}
			if res.Lint.HasErrors() {
				t.Errorf("%s: generated app has lint errors: %v", app.Name, res.Lint.Diagnostics)
			}
			for _, d := range Defects() {
				if hits := res.Lint.ByCode(d.Code); len(hits) > 0 {
					t.Errorf("%s: clean app reports %s: %v", app.Name, d.Code, hits)
				}
			}
		}
	}
}

func TestDefectApplyDoesNotMutate(t *testing.T) {
	base := Generate(rand.New(rand.NewSource(7)), Play, 0)
	before := base.Files["classes.ir"]
	d, ok := DefectByName("usebeforedef")
	if !ok {
		t.Fatal("usebeforedef defect missing")
	}
	mutated := d.Apply(base)
	if base.Files["classes.ir"] != before {
		t.Error("Apply mutated the original app's files")
	}
	if mutated.Files["classes.ir"] == before {
		t.Error("Apply did not inject the snippet")
	}
	if mutated.Name == base.Name {
		t.Error("Apply did not tag the app name")
	}
}
