package appgen

import (
	"context"
	"fmt"
	"testing"
)

// TestCorpusWorkerCountEquivalence: a corpus batch must aggregate to the
// same leak statistics at any taint worker count — same total, same
// apps-with-leaks count, same per-sink distribution.
func TestCorpusWorkerCountEquivalence(t *testing.T) {
	const n, seed = 6, 42
	base, err := RunCorpusWith(context.Background(), Stress, n, seed, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalFound == 0 {
		t.Fatal("stress corpus found no leaks; the equivalence check would be vacuous")
	}
	if base.Errors+base.Recovered+base.Incomplete > 0 {
		t.Fatalf("sequential baseline had abnormal outcomes: %+v", base.Failures)
	}
	for _, w := range []int{2, 8} {
		stats, err := RunCorpusWith(context.Background(), Stress, n, seed, RunOptions{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if stats.TotalFound != base.TotalFound || stats.AppsWithLeaks != base.AppsWithLeaks {
			t.Errorf("workers=%d: found %d leaks in %d apps, want %d in %d",
				w, stats.TotalFound, stats.AppsWithLeaks, base.TotalFound, base.AppsWithLeaks)
		}
		if got, want := fmt.Sprint(stats.BySink), fmt.Sprint(base.BySink); got != want {
			t.Errorf("workers=%d: sink distribution %s, want %s", w, got, want)
		}
	}
}

// TestCorpusStringCarrierEquivalence: the string-carrier fast path must
// not change corpus-level results — same totals and sink distribution with
// carriers on and off, sequential and parallel. The stress profile's
// helpers launder values through StringBuilder chains, so the carrier
// transfers (and the alias gate) are genuinely exercised.
func TestCorpusStringCarrierEquivalence(t *testing.T) {
	const n, seed = 6, 42
	base, err := RunCorpusWith(context.Background(), Stress, n, seed, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalFound == 0 {
		t.Fatal("stress corpus found no leaks; the equivalence check would be vacuous")
	}
	for _, w := range []int{1, 8} {
		stats, err := RunCorpusWith(context.Background(), Stress, n, seed,
			RunOptions{Workers: w, NoStringCarriers: true})
		if err != nil {
			t.Fatal(err)
		}
		if stats.TotalFound != base.TotalFound || stats.AppsWithLeaks != base.AppsWithLeaks {
			t.Errorf("carriers off, workers=%d: found %d leaks in %d apps, want %d in %d",
				w, stats.TotalFound, stats.AppsWithLeaks, base.TotalFound, base.AppsWithLeaks)
		}
		if got, want := fmt.Sprint(stats.BySink), fmt.Sprint(base.BySink); got != want {
			t.Errorf("carriers off, workers=%d: sink distribution %s, want %s", w, got, want)
		}
	}
}
