// Package insecurebank provides the RQ2 subject: a deliberately
// vulnerable multi-component banking app in the spirit of Paladion's
// InsecureBank, with exactly seven planted data leaks. The paper reports
// FlowDroid finding all seven with no false positives or negatives in
// about 31 seconds on 2010 laptop hardware; the test suite and benchmark
// harness check the same 7/7 result here.
package insecurebank

import "flowdroid/internal/apk"

// ExpectedLeaks is the planted ground truth.
const ExpectedLeaks = 7

// Leaks documents the seven planted flows.
var Leaks = []string{
	"1: login password field -> debug log (LoginActivity.onClickLogin)",
	"2: login password field -> shared preferences (LoginActivity.onClickLogin)",
	"3: device id -> HTTP header (LoginActivity.onClickRegister)",
	"4: incoming account intent -> info log (AccountActivity.onCreate)",
	"5: last known location -> SMS (BranchFinderService.onStartCommand)",
	"6: SIM serial -> world-readable file (BackupService.onStartCommand)",
	"7: transfer PIN field -> broadcast intent (TransferActivity.onClickTransfer)",
}

// Files is the app package.
var Files = map[string]string{
	"AndroidManifest.xml": `<?xml version="1.0"?>
<manifest xmlns:android="http://schemas.android.com/apk/res/android"
          package="com.insecurebank">
  <application>
    <activity android:name=".LoginActivity">
      <intent-filter>
        <action android:name="android.intent.action.MAIN"/>
      </intent-filter>
    </activity>
    <activity android:name=".AccountActivity"/>
    <activity android:name=".TransferActivity"/>
    <service android:name=".BranchFinderService"/>
    <service android:name=".BackupService"/>
  </application>
</manifest>`,

	"res/layout/login.xml": `<?xml version="1.0"?>
<LinearLayout xmlns:android="http://schemas.android.com/apk/res/android">
  <EditText android:id="@+id/username"/>
  <EditText android:id="@+id/password" android:inputType="textPassword"/>
  <Button android:id="@+id/loginBtn" android:onClick="onClickLogin"/>
  <Button android:id="@+id/registerBtn" android:onClick="onClickRegister"/>
</LinearLayout>`,

	"res/layout/transfer.xml": `<?xml version="1.0"?>
<LinearLayout xmlns:android="http://schemas.android.com/apk/res/android">
  <EditText android:id="@+id/amount"/>
  <EditText android:id="@+id/pin" android:inputType="numberPassword"/>
  <Button android:id="@+id/transferBtn" android:onClick="onClickTransfer"/>
</LinearLayout>`,

	"classes.ir": `
// LoginActivity: reads the credentials; leaks the password to the debug
// log (leak 1) and to the preferences file (leak 2); registration leaks
// the device id in an HTTP header (leak 3).
class com.insecurebank.LoginActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    this.setContentView(@layout/login)
  }

  method onClickLogin(v: android.view.View): void {
    uw = this.findViewById(@id/username)
    local ut: android.widget.EditText
    ut = (android.widget.EditText) uw
    uname = ut.getText()
    pworig = this.findViewById(@id/password)
    local pt: android.widget.EditText
    pt = (android.widget.EditText) pworig
    pwd = pt.getText()
    android.util.Log.d("login", pwd)
    prefs = this.getSharedPreferences("cred", 0)
    ed = prefs.edit()
    ed.putString("pwd", pwd)
    ed.commit()
    return
  }

  method onClickRegister(v: android.view.View): void {
    tmRaw = this.getSystemService("phone")
    local tm: android.telephony.TelephonyManager
    tm = (android.telephony.TelephonyManager) tmRaw
    imei = tm.getDeviceId()
    url = new java.net.URL("http://bank.example/register")
    conn = url.openConnection()
    conn.setRequestProperty("X-Device-Id", imei)
    return
  }
}

// AccountActivity: the account number arrives in the launch intent (a
// source under the ICC over-approximation) and is logged (leak 4).
class com.insecurebank.AccountActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    i = this.getIntent()
    acct = i.getStringExtra("account")
    android.util.Log.i("account", acct)
  }
}

// TransferActivity: the PIN field is broadcast to all apps (leak 7).
class com.insecurebank.TransferActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    this.setContentView(@layout/transfer)
  }

  method onClickTransfer(v: android.view.View): void {
    pv = this.findViewById(@id/pin)
    local pf: android.widget.EditText
    pf = (android.widget.EditText) pv
    pin = pf.getText()
    i = new android.content.Intent()
    i.setAction("com.insecurebank.TRANSFER")
    i.putExtra("pin", pin)
    this.sendBroadcast(i)
    return
  }
}

// BranchFinderService: texts the user's location to a helpline (leak 5).
class com.insecurebank.BranchFinderService extends android.app.Service {
  method onStartCommand(i: android.content.Intent): void {
    lmRaw = this.getSystemService("location")
    local lm: android.location.LocationManager
    lm = (android.location.LocationManager) lmRaw
    loc = lm.getLastKnownLocation("gps")
    s = loc.toString()
    sms = android.telephony.SmsManager.getDefault()
    sms.sendTextMessage("+1 555 0100", null, s, null, null)
    return
  }
}

// BackupService: copies the SIM serial into a world-readable file (leak 6).
class com.insecurebank.BackupService extends android.app.Service {
  method onStartCommand(i: android.content.Intent): void {
    tmRaw = this.getSystemService("phone")
    local tm: android.telephony.TelephonyManager
    tm = (android.telephony.TelephonyManager) tmRaw
    sim = tm.getSimSerialNumber()
    fos = this.openFileOutput("backup.txt", 1)
    fos.write(sim)
    return
  }
}
`,
}

// App loads the package.
func App() (*apk.App, error) { return apk.LoadFiles(Files) }
