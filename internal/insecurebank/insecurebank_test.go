package insecurebank

import (
	"context"
	"testing"

	"flowdroid/internal/core"
)

// TestRQ2AllSevenLeaks reproduces RQ2: FlowDroid finds all seven planted
// leaks in InsecureBank with no false positives and no false negatives.
func TestRQ2AllSevenLeaks(t *testing.T) {
	res, err := core.AnalyzeFiles(context.Background(), Files, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	leaks := res.Leaks()
	if len(leaks) != ExpectedLeaks {
		for _, l := range leaks {
			t.Logf("leak: %v", l)
		}
		t.Fatalf("found %d leaks, want exactly %d", len(leaks), ExpectedLeaks)
	}
	// Each planted flow pairs a distinct source label with a distinct
	// sink label; check the pairing is complete.
	wantPairs := map[[2]string]bool{
		{"password-field", "log"}:         true, // leak 1
		{"password-field", "preferences"}: true, // leak 2
		{"device-id", "http-header"}:      true, // leak 3
		{"incoming-intent", "log"}:        true, // leak 4
		{"location", "sms"}:               true, // leak 5
		{"sim-serial", "network-write"}:   true, // leak 6
		{"password-field", "broadcast"}:   true, // leak 7
	}
	for _, l := range leaks {
		pair := [2]string{l.Source().Source.Label, l.SinkSpec.Label}
		if !wantPairs[pair] {
			t.Errorf("unexpected leak pairing %v: %v", pair, l)
		}
		delete(wantPairs, pair)
	}
	for pair := range wantPairs {
		t.Errorf("missing leak pairing %v", pair)
	}
}

// TestCoarseToolsMissLeaks shows the baselines' blind spots on the same
// app: without the full lifecycle and imperative callback handling, some
// of the seven flows disappear.
func TestCoarseToolsMissLeaks(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Lifecycle.InvokeCallbacks = false
	res, err := core.AnalyzeFiles(context.Background(), Files, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leaks()) >= ExpectedLeaks {
		t.Errorf("without callbacks the button-handler leaks should disappear, got %d", len(res.Leaks()))
	}
}

func TestDocumentation(t *testing.T) {
	if len(Leaks) != ExpectedLeaks {
		t.Errorf("documented leak list has %d entries, want %d", len(Leaks), ExpectedLeaks)
	}
	app, err := App()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(app.Components()); got != 5 {
		t.Errorf("components = %d, want 5", got)
	}
}
