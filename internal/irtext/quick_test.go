package irtext

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"flowdroid/internal/ir"
)

// randSource emits a random well-formed IR source: a class with one
// method whose statements are drawn from every form the grammar supports.
func randSource(r *rand.Rand, nStmts int) string {
	var sb strings.Builder
	sb.WriteString("class Q {\n")
	sb.WriteString("  field f: java.lang.String\n")
	sb.WriteString("  static field sf: java.lang.String\n")
	sb.WriteString("  method helper(x: java.lang.String): java.lang.String {\n    return x\n  }\n")
	sb.WriteString("  method m(p: java.lang.String): void {\n")
	sb.WriteString("    a = \"a\"\n    b = \"b\"\n    o = new Q\n")
	labels := 0
	for i := 0; i < nStmts; i++ {
		switch r.Intn(10) {
		case 0:
			sb.WriteString("    a = b\n")
		case 1:
			fmt.Fprintf(&sb, "    b = \"s%d\"\n", i)
		case 2:
			sb.WriteString("    a = b + p\n")
		case 3:
			sb.WriteString("    o.f = a\n")
		case 4:
			sb.WriteString("    b = o.f\n")
		case 5:
			sb.WriteString("    Q.sf = b\n")
		case 6:
			sb.WriteString("    a = Q.sf\n")
		case 7:
			labels++
			fmt.Fprintf(&sb, "    if * goto W%d\n    a = b\n  W%d:\n", labels, labels)
		case 8:
			sb.WriteString("    a = o.helper(b)\n")
		case 9:
			fmt.Fprintf(&sb, "    a = %d\n    a = b\n", r.Intn(1000))
		}
	}
	sb.WriteString("    return\n  }\n}\n")
	return sb.String()
}

// kindSignature summarizes a body as statement-kind mnemonics for
// comparing programs across a print/parse round trip.
func kindSignature(m *ir.Method) string {
	var sb strings.Builder
	for _, s := range m.Body() {
		switch s := s.(type) {
		case *ir.AssignStmt:
			sb.WriteString("a")
			if _, ok := s.RHS.(*ir.InvokeExpr); ok {
				sb.WriteString("c")
			}
		case *ir.InvokeStmt:
			sb.WriteString("i")
		case *ir.IfStmt:
			sb.WriteString("?")
		case *ir.GotoStmt:
			sb.WriteString("g")
		case *ir.ReturnStmt:
			sb.WriteString("r")
		case *ir.NopStmt:
			sb.WriteString("n")
		}
	}
	return sb.String()
}

// TestQuickPrintParseRoundTrip: printing a parsed random program and
// re-parsing the output preserves the statement structure — the printer
// and the grammar agree.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		src := randSource(r, int(size%30))
		p1, err := ParseProgram(src, "gen.ir")
		if err != nil {
			t.Logf("generated source did not parse: %v\n%s", err, src)
			return false
		}
		printed := ir.PrintClass(p1.Class("Q"))
		p2, err := ParseProgram(printed, "printed.ir")
		if err != nil {
			t.Logf("printed source did not parse: %v\n%s", err, printed)
			return false
		}
		m1 := p1.Class("Q").Method("m", 1)
		m2 := p2.Class("Q").Method("m", 1)
		return kindSignature(m1) == kindSignature(m2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickLexerNeverLoops: arbitrary input either tokenizes to EOF or
// fails with an error — the lexer always makes progress.
func TestQuickLexerNeverLoops(t *testing.T) {
	f := func(data []byte) bool {
		l := newLexer(string(data), "fuzz")
		for steps := 0; steps < len(data)+10; steps++ {
			tok, err := l.next()
			if err != nil {
				return true
			}
			if tok.kind == tokEOF {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickParserNeverPanics: arbitrary text never panics the parser.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ParseProgram(string(data), "fuzz.ir")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickStringLiterals: string constants with escapes survive a lex.
func TestQuickStringLiterals(t *testing.T) {
	f := func(s string) bool {
		// Build a literal with the lexer's escaping rules.
		var lit strings.Builder
		lit.WriteByte('"')
		for i := 0; i < len(s); i++ {
			switch s[i] {
			case '"':
				lit.WriteString(`\"`)
			case '\\':
				lit.WriteString(`\\`)
			case '\n':
				lit.WriteString(`\n`)
			case '\t':
				lit.WriteString(`\t`)
			default:
				lit.WriteByte(s[i])
			}
		}
		lit.WriteByte('"')
		l := newLexer(lit.String(), "lit")
		tok, err := l.next()
		if err != nil || tok.kind != tokString {
			return false
		}
		return tok.text == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
