package irtext

import (
	"testing"

	"flowdroid/internal/ir"
)

// wrappedStmt embeds the ir.Stmt interface without re-implementing the
// SetLabel/SetLine setters, so the type assertions inside setLabel and
// setLine fail against it.
type wrappedStmt struct{ ir.Stmt }

func TestSetLabelLineToleratesForeignStmts(t *testing.T) {
	// setLabel/setLine must degrade to a no-op on statement values that do
	// not provide the setters (historically an unchecked assertion that
	// panicked on foreign or nil statements).
	for _, s := range []ir.Stmt{wrappedStmt{}, wrappedStmt{Stmt: &ir.ReturnStmt{}}, nil} {
		setLabel(s, "L")
		setLine(s, 7)
	}
	// A real statement still gets its label and line recorded.
	r := &ir.ReturnStmt{}
	setLabel(r, "end")
	setLine(r, 3)
	if r.Label() != "end" || r.Line() != 3 {
		t.Errorf("setLabel/setLine lost data on real stmt: label=%q line=%d", r.Label(), r.Line())
	}
}
