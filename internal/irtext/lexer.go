// Package irtext implements the textual front end for the IR: a lexer and
// recursive-descent parser for ".ir" files, the stand-in for Dexpler's
// Dalvik-bytecode-to-Jimple conversion. App packages carry their code as
// .ir files next to AndroidManifest.xml, and the loader in internal/apk
// feeds them through this parser.
//
// The grammar is a compact Jimple dialect; see the package documentation of
// internal/ir for the statement algebra and testdata/ for examples:
//
//	class com.example.LeakageApp extends android.app.Activity {
//	    field user: com.example.User
//	    method onRestart(): void {
//	        et = this.findViewById(@id/pwdString)
//	        pwd = et.getText()
//	        this.user = pwd
//	    }
//	}
package irtext

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokString
	tokRes   // @id/name or @layout/name
	tokPunct // single punctuation: { } ( ) [ ] : , = ; .
	tokOp    // + - * / % binary operators (also '*' for opaque conditions)
	tokArrow // -> (used by config files sharing this lexer)
)

type token struct {
	kind tokenKind
	text string
	num  int64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer turns source text into tokens. It is shared by the IR parser and
// kept deliberately simple: one-pass, no backtracking, line tracking for
// error messages.
type lexer struct {
	src  string
	file string
	pos  int
	line int
}

func newLexer(src, file string) *lexer {
	return &lexer{src: src, file: file, line: 1}
}

func (l *lexer) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", l.file, line, fmt.Sprintf(format, args...))
}

func isIdentStart(r byte) bool {
	return r == '_' || r == '$' || unicode.IsLetter(rune(r))
}

func isIdentPart(r byte) bool {
	return isIdentStart(r) || r >= '0' && r <= '9'
}

// next returns the next token, skipping whitespace and // comments.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	start, line := l.pos, l.line
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line}, nil

	case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		l.pos++
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
			l.pos++
		}
		n, err := strconv.ParseInt(l.src[start:l.pos], 10, 64)
		if err != nil {
			return token{}, l.errf(line, "bad integer literal %q", l.src[start:l.pos])
		}
		return token{kind: tokInt, text: l.src[start:l.pos], num: n, line: line}, nil

	case c == '"':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			ch := l.src[l.pos]
			if ch == '\\' && l.pos+1 < len(l.src) {
				l.pos++
				switch l.src[l.pos] {
				case 'n':
					ch = '\n'
				case 't':
					ch = '\t'
				default:
					ch = l.src[l.pos]
				}
			}
			if ch == '\n' {
				return token{}, l.errf(line, "unterminated string literal")
			}
			sb.WriteByte(ch)
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf(line, "unterminated string literal")
		}
		l.pos++ // closing quote
		return token{kind: tokString, text: sb.String(), line: line}, nil

	case c == '@':
		l.pos++
		for l.pos < len(l.src) && (isIdentPart(l.src[l.pos]) || l.src[l.pos] == '/' || l.src[l.pos] == '.') {
			l.pos++
		}
		name := l.src[start+1 : l.pos]
		if name == "" {
			return token{}, l.errf(line, "empty resource reference after '@'")
		}
		return token{kind: tokRes, text: name, line: line}, nil

	case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
		l.pos += 2
		return token{kind: tokArrow, text: "->", line: line}, nil

	case strings.IndexByte("{}()[]:,=;.", c) >= 0:
		l.pos++
		return token{kind: tokPunct, text: string(c), line: line}, nil

	case strings.IndexByte("+-*/%&|^", c) >= 0:
		l.pos++
		return token{kind: tokOp, text: string(c), line: line}, nil
	}
	return token{}, l.errf(line, "unexpected character %q", string(c))
}
