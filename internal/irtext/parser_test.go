package irtext

import (
	"strings"
	"testing"

	"flowdroid/internal/ir"
)

const sampleSrc = `
// A small program exercising every statement form.
class com.test.User {
  field name: java.lang.String
  field pwd: java.lang.String
  method init(n: java.lang.String, p: java.lang.String): void {
    this.name = n
    this.pwd = p
  }
  method getPwd(): java.lang.String {
    r = this.pwd
    return r
  }
}

class com.test.Main {
  static field cache: com.test.User

  static method main(): void {
    n = "alice"
    p = com.test.Source.secret()
    u = new com.test.User(n, p)
    com.test.Main.cache = u
    s = u.getPwd()
    msg = "pwd: " + s
    arr = newarray java.lang.String
    arr[0] = msg
    t = arr[1]
    if * goto skip
    com.test.Sink.leak(t)
  skip:
    o = (java.lang.Object) u
    return
  }
}

class com.test.Source {
  static method secret(): java.lang.String;
}

class com.test.Sink {
  static method leak(s: java.lang.String): void;
}
`

func TestParseSample(t *testing.T) {
	prog, err := ParseProgram(sampleSrc, "sample.ir")
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	user := prog.Class("com.test.User")
	if user == nil {
		t.Fatal("class com.test.User not found")
	}
	if user.Super != "java.lang.Object" {
		t.Errorf("User super = %q, want java.lang.Object", user.Super)
	}
	if f := user.Field("pwd"); f == nil || !f.Type.Equal(ir.Ref("java.lang.String")) {
		t.Errorf("field pwd missing or mistyped: %v", f)
	}
	main := prog.Class("com.test.Main").Method("main", 0)
	if main == nil {
		t.Fatal("method main not found")
	}
	if !main.Static {
		t.Error("main should be static")
	}
	// Constructor sugar expands to alloc + special init call.
	var sawInit, sawStaticStore, sawArrayStore, sawCast bool
	for _, s := range main.Body() {
		if c := ir.CallOf(s); c != nil && c.Kind == ir.SpecialInvoke && c.Ref.Name == "init" {
			sawInit = true
			if c.Ref.Class != "com.test.User" {
				t.Errorf("init target class = %q", c.Ref.Class)
			}
		}
		if a, ok := s.(*ir.AssignStmt); ok {
			if _, ok := a.LHS.(*ir.StaticFieldRef); ok {
				sawStaticStore = true
			}
			if _, ok := a.LHS.(*ir.ArrayRef); ok {
				sawArrayStore = true
			}
			if _, ok := a.RHS.(*ir.Cast); ok {
				sawCast = true
			}
		}
	}
	if !sawInit {
		t.Error("constructor sugar did not expand to init call")
	}
	if !sawStaticStore {
		t.Error("static field store not parsed")
	}
	if !sawArrayStore {
		t.Error("array store not parsed")
	}
	if !sawCast {
		t.Error("cast not parsed")
	}
	// Stub methods have no body.
	if m := prog.Class("com.test.Source").Method("secret", 0); m == nil || !m.Abstract() {
		t.Error("stub method secret should be abstract")
	}
}

func TestTypeInference(t *testing.T) {
	prog, err := ParseProgram(sampleSrc, "sample.ir")
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Class("com.test.Main").Method("main", 0)
	wantTypes := map[string]string{
		"u":   "com.test.User",
		"s":   "java.lang.String",
		"p":   "java.lang.String",
		"msg": "java.lang.String",
		"arr": "java.lang.String[]",
		"o":   "java.lang.Object",
	}
	for name, want := range wantTypes {
		l := main.LookupLocal(name)
		if l == nil {
			t.Errorf("local %s missing", name)
			continue
		}
		if got := l.Type.String(); got != want {
			t.Errorf("local %s: type = %s, want %s", name, got, want)
		}
	}
}

func TestFieldResolution(t *testing.T) {
	prog, err := ParseProgram(sampleSrc, "sample.ir")
	if err != nil {
		t.Fatal(err)
	}
	user := prog.Class("com.test.User")
	getPwd := user.Method("getPwd", 0)
	a := getPwd.Body()[0].(*ir.AssignStmt)
	fr, ok := a.RHS.(*ir.FieldRef)
	if !ok {
		t.Fatalf("first stmt of getPwd should load a field, got %T", a.RHS)
	}
	if fr.Field == nil || fr.Field != user.Field("pwd") {
		t.Errorf("field not resolved to declaration: %v", fr.Field)
	}
}

func TestBranchResolution(t *testing.T) {
	prog, err := ParseProgram(sampleSrc, "sample.ir")
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Class("com.test.Main").Method("main", 0)
	var ifs *ir.IfStmt
	for _, s := range main.Body() {
		if i, ok := s.(*ir.IfStmt); ok {
			ifs = i
		}
	}
	if ifs == nil {
		t.Fatal("no if statement found")
	}
	target := main.Body()[ifs.TargetIndex]
	if target.Label() != "skip" {
		t.Errorf("if target label = %q, want skip", target.Label())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"duplicate class", `class A {} class A {}`, "duplicate class"},
		{"undefined label", `class A { method m(): void { goto L } }`, "undefined label"},
		{"chained fields", `class A { field f: A  method m(): void { local x: A  y = x.f.f } }`, "three-address"},
		{"bad condition", `class A { method m(): void { if x goto L } }`, "opaque"},
		{"unterminated string", `class A { method m(): void { x = "abc } }`, "unterminated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseProgram(tc.src, "t.ir")
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestRoundTripPrint(t *testing.T) {
	prog, err := ParseProgram(sampleSrc, "sample.ir")
	if err != nil {
		t.Fatal(err)
	}
	// Printing and reparsing the printed text must succeed and preserve
	// the class inventory (a weak but useful round-trip property).
	var sb strings.Builder
	for _, c := range prog.Classes() {
		if c.Name == "java.lang.Object" {
			continue
		}
		sb.WriteString(ir.PrintClass(c))
	}
	prog2, err := ParseProgram(sb.String(), "printed.ir")
	if err != nil {
		t.Fatalf("reparse of printed program failed: %v\n%s", err, sb.String())
	}
	for _, c := range prog.Classes() {
		if prog2.Class(c.Name) == nil && c.Name != "java.lang.Object" {
			t.Errorf("class %s lost in round trip", c.Name)
		}
	}
}

func TestParseErrorPositions(t *testing.T) {
	// Errors must carry file:line positions.
	src := "class A {\n  method m(): void {\n    if x goto L\n  }\n}"
	_, err := ParseProgram(src, "pos.ir")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "pos.ir:3") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestClassPositions(t *testing.T) {
	// The parser records where each class was declared so diagnostics can
	// be positioned.
	src := "class A {\n}\nclass B {\n  method m(): void { return }\n}"
	prog, err := ParseProgram(src, "pos.ir")
	if err != nil {
		t.Fatal(err)
	}
	for name, line := range map[string]int{"A": 1, "B": 3} {
		c := prog.Class(name)
		if c.File != "pos.ir" || c.Line != line {
			t.Errorf("class %s declared at %s:%d, want pos.ir:%d", name, c.File, c.Line, line)
		}
	}
}

func TestDeclaredFlag(t *testing.T) {
	// "local" declarations, parameters and the receiver are Declared;
	// locals created by first assignment are not.
	src := `class A { method m(p: int): void { local x: A  y = 1  return } }`
	prog, err := ParseProgram(src, "t.ir")
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Class("A").Method("m", 1)
	for name, want := range map[string]bool{"p": true, "x": true, "this": true, "y": false} {
		if l := m.LookupLocal(name); l == nil || l.Declared != want {
			t.Errorf("local %s: Declared = %v, want %v", name, l != nil && l.Declared, want)
		}
	}
}

func TestMoreParseErrors(t *testing.T) {
	cases := []struct{ name, src, wantErr string }{
		{"missing class keyword", `method m(): void {}`, "expected class"},
		{"bad member", `class A { banana }`, "field or method"},
		{"missing arity paren", `class A { method m: void {} }`, `expected "("`},
		{"call on missing receiver", `class A { method m(): void { foo() } }`, "receiver"},
		{"array base not local", `class A { method m(): void { a.b[0] = 1 } }`, "array base"},
		{"binop needs simple", `class A { field f: A  method m(): void { local x: A  y = x.f + x } }`, "temporary"},
		{"two labels", `class A { method m(): void { L1: L2: nop } }`, "consecutive labels"},
		{"ctor to field", `class B { method init(): void { return } } class A { field f: B  method m(): void { this.f = new B() } }`, "local"},
		{"duplicate method", `class A { method m(): void {} method m(): void {} }`, "duplicate method"},
		{"duplicate field", `class A { field f: A  field f: A }`, "duplicate field"},
		{"bad char", "class A { method m(): void { x = ~ } }", "unexpected character"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseProgram(tc.src, "t.ir")
			if err == nil {
				t.Fatalf("expected error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestTrailingLabelGetsNop(t *testing.T) {
	prog, err := ParseProgram(`class A { method m(): void { if * goto end  x = 1
  end:
} }`, "t.ir")
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Class("A").Method("m", 0)
	var found bool
	for _, s := range m.Body() {
		if s.Label() == "end" {
			found = true
		}
	}
	if !found {
		t.Error("trailing label lost")
	}
}

func TestInterfaceParsing(t *testing.T) {
	prog, err := ParseProgram(`
interface I {
  method f(x: int): int;
}
interface J extends I {
}
class A implements J {
  method f(x: int): int {
    return x
  }
}
`, "i.ir")
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Class("I").Interface || !prog.Class("J").Interface {
		t.Error("interfaces not marked")
	}
	if !prog.SubtypeOf("A", "I") {
		t.Error("A should implement I via J")
	}
	if m := prog.ResolveMethod("J", "f", 1); m == nil || !m.Abstract() {
		t.Error("interface method should resolve as abstract")
	}
}
