package irtext_test

// The textual def-before-use scan that used to live in the parser moved
// to the irlint "defuse" analyzer; these tests pin the parse-then-verify
// behaviour (same message, same position, but a diagnostic rather than a
// parse error). External test package: irlint depends (via sourcesink)
// on packages that import irtext.

import (
	"strings"
	"testing"

	"flowdroid/internal/irlint"
	"flowdroid/internal/irtext"
)

func TestUndefinedLocalIsLintDiagnostic(t *testing.T) {
	src := "class A {\n  method m(): void {\n    x = y\n  }\n}"
	prog, err := irtext.ParseProgram(src, "pos.ir")
	if err != nil {
		t.Fatalf("use of an undefined local must parse (it is a verification error now): %v", err)
	}
	res := irlint.Run(prog, irlint.Config{})
	var found bool
	for _, d := range res.ByCode("defuse.undef") {
		if d.Severity != irlint.Error {
			t.Errorf("defuse.undef severity = %v, want error", d.Severity)
		}
		found = true
		if want := `use of undefined local "y"`; !strings.Contains(d.Message, want) {
			t.Errorf("message %q does not contain %q", d.Message, want)
		}
		if d.File != "pos.ir" || d.Line != 3 {
			t.Errorf("diagnostic at %s, want pos.ir:3", d.Pos())
		}
	}
	if !found {
		t.Fatalf("no defuse.undef error reported; got %v", res.Diagnostics)
	}
}

func TestDefinedLocalsAreLintClean(t *testing.T) {
	src := "class A {\n  method m(p: int): void {\n    x = p\n    y = x\n  }\n}"
	prog, err := irtext.ParseProgram(src, "clean.ir")
	if err != nil {
		t.Fatal(err)
	}
	if res := irlint.Run(prog, irlint.Config{}); res.HasErrors() {
		t.Errorf("clean program produced lint errors: %v", res.Diagnostics)
	}
}
