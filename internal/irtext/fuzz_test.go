package irtext_test

import (
	"sort"
	"strings"
	"testing"

	"flowdroid/internal/insecurebank"
	"flowdroid/internal/irtext"
)

// FuzzParse feeds the IR parser arbitrary source text. Malformed input
// must come back as an error — never a panic — and successful parses must
// produce a program. The corpus is seeded with the real InsecureBank
// sources plus truncated and corrupted variants of them, the shapes a
// damaged app package would present.
func FuzzParse(f *testing.F) {
	var irSources []string
	var names []string
	for name := range insecurebank.Files {
		if strings.HasSuffix(name, ".ir") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		irSources = append(irSources, insecurebank.Files[name])
	}
	if len(irSources) == 0 {
		f.Fatal("insecurebank has no .ir sources to seed from")
	}
	for _, src := range irSources {
		f.Add(src)
		f.Add(src[:len(src)/2])                                // truncated mid-file
		f.Add(src[:len(src)/3] + "{{{" + src[2*len(src)/3:])   // spliced garbage
		f.Add(strings.ReplaceAll(src, ":", ""))                // delimiters stripped
		f.Add(strings.ReplaceAll(src, "method", "me\x00thod")) // NUL injected
		f.Add(strings.Map(func(r rune) rune { return r + 1 }, src[:min(200, len(src))]))
	}
	f.Add("")
	f.Add("class")
	f.Add("class C { method")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := irtext.ParseProgram(src, "fuzz.ir")
		if err == nil && prog == nil {
			t.Fatal("ParseProgram returned neither a program nor an error")
		}
	})
}
