package irtext

import (
	"fmt"

	"flowdroid/internal/ir"
)

// ParseInto parses src (one .ir file) and adds its classes to prog. The
// caller is responsible for calling prog.Link() once all files are in.
func ParseInto(prog *ir.Program, src, filename string) error {
	p := &parser{lex: newLexer(src, filename), prog: prog}
	if err := p.advance(); err != nil {
		return err
	}
	if err := p.advance(); err != nil {
		return err
	}
	return p.parseFile()
}

// ParseProgram parses a self-contained program from a single source text
// and links it.
func ParseProgram(src, filename string) (*ir.Program, error) {
	prog := ir.NewProgram()
	if err := ParseInto(prog, src, filename); err != nil {
		return nil, err
	}
	if err := prog.Link(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse parses and links a program, panicking on error. It is intended
// for benchmark suites whose sources are compile-time constants.
func MustParse(src, filename string) *ir.Program {
	prog, err := ParseProgram(src, filename)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	lex  *lexer
	prog *ir.Program
	cur  token
	next token
}

func (p *parser) advance() error {
	p.cur = p.next
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.next = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.lex.file, p.cur.line, fmt.Sprintf(format, args...))
}

func (p *parser) isPunct(s string) bool { return p.cur.kind == tokPunct && p.cur.text == s }

func (p *parser) isIdent(s string) bool { return p.cur.kind == tokIdent && p.cur.text == s }

func (p *parser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return p.errf("expected %q, found %s", s, p.cur)
	}
	return p.advance()
}

func (p *parser) expectIdent() (string, error) {
	if p.cur.kind != tokIdent {
		return "", p.errf("expected identifier, found %s", p.cur)
	}
	name := p.cur.text
	return name, p.advance()
}

// qname parses a dot-separated qualified name (e.g. android.app.Activity).
func (p *parser) qname() (string, error) {
	name, err := p.expectIdent()
	if err != nil {
		return "", err
	}
	for p.isPunct(".") {
		if err := p.advance(); err != nil {
			return "", err
		}
		part, err := p.expectIdent()
		if err != nil {
			return "", err
		}
		name += "." + part
	}
	return name, nil
}

// typeName parses a type: a qualified name or primitive, optionally
// suffixed with "[]".
func (p *parser) typeName() (ir.Type, error) {
	name, err := p.qname()
	if err != nil {
		return ir.Unknown, err
	}
	t := ir.TypeFromName(name)
	for p.isPunct("[") {
		if err := p.advance(); err != nil {
			return ir.Unknown, err
		}
		if err := p.expectPunct("]"); err != nil {
			return ir.Unknown, err
		}
		t = ir.ArrayOf(t)
	}
	return t, nil
}

func (p *parser) parseFile() error {
	for p.cur.kind != tokEOF {
		switch {
		case p.isIdent("class"), p.isIdent("interface"):
			if err := p.parseClass(); err != nil {
				return err
			}
		default:
			return p.errf("expected class or interface declaration, found %s", p.cur)
		}
	}
	return nil
}

func (p *parser) parseClass() error {
	isInterface := p.isIdent("interface")
	declLine := p.cur.line
	if err := p.advance(); err != nil {
		return err
	}
	name, err := p.qname()
	if err != nil {
		return err
	}
	super := ""
	if p.isIdent("extends") {
		if err := p.advance(); err != nil {
			return err
		}
		if super, err = p.qname(); err != nil {
			return err
		}
	}
	if super == "" && !isInterface && name != "java.lang.Object" {
		super = "java.lang.Object"
	}
	cls := ir.NewClass(name, super)
	cls.Interface = isInterface
	cls.File, cls.Line = p.lex.file, declLine
	if p.isIdent("implements") {
		for {
			if err := p.advance(); err != nil {
				return err
			}
			in, err := p.qname()
			if err != nil {
				return err
			}
			cls.Interfaces = append(cls.Interfaces, in)
			if !p.isPunct(",") {
				break
			}
		}
	}
	if err := p.prog.AddClass(cls); err != nil {
		return p.errf("%v", err)
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.isPunct("}") {
		static := false
		if p.isIdent("static") {
			static = true
			if err := p.advance(); err != nil {
				return err
			}
		}
		switch {
		case p.isIdent("field"):
			if err := p.parseField(cls, static); err != nil {
				return err
			}
		case p.isIdent("method"):
			if err := p.parseMethod(cls, static); err != nil {
				return err
			}
		default:
			return p.errf("expected field or method declaration, found %s", p.cur)
		}
	}
	return p.advance() // consume "}"
}

func (p *parser) parseField(cls *ir.Class, static bool) error {
	if err := p.advance(); err != nil { // consume "field"
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct(":"); err != nil {
		return err
	}
	t, err := p.typeName()
	if err != nil {
		return err
	}
	if _, err := cls.AddField(name, t, static); err != nil {
		return p.errf("%v", err)
	}
	return nil
}

func (p *parser) parseMethod(cls *ir.Class, static bool) error {
	if err := p.advance(); err != nil { // consume "method"
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	m := ir.NewMethod(name, ir.Void, static)
	if m.This != nil {
		m.This.Type = ir.Ref(cls.Name)
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	for !p.isPunct(")") {
		pname, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		t, err := p.typeName()
		if err != nil {
			return err
		}
		if _, err := m.AddParam(pname, t); err != nil {
			return p.errf("%v", err)
		}
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
	if err := p.advance(); err != nil { // consume ")"
		return err
	}
	if err := p.expectPunct(":"); err != nil {
		return err
	}
	ret, err := p.typeName()
	if err != nil {
		return err
	}
	m.Return = ret
	if err := cls.AddMethod(m); err != nil {
		return p.errf("%v", err)
	}
	if p.isPunct(";") { // abstract / stub
		return p.advance()
	}
	body, err := p.parseBody(m)
	if err != nil {
		return err
	}
	m.SetBody(body)
	return nil
}

// parseBody parses "{ stmt* }" into a statement list.
func (p *parser) parseBody(m *ir.Method) ([]ir.Stmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var body []ir.Stmt
	pendingLabel := ""
	emit := func(s ir.Stmt, line int) {
		if pendingLabel != "" {
			setLabel(s, pendingLabel)
			pendingLabel = ""
		}
		setLine(s, line)
		body = append(body, s)
	}
	for !p.isPunct("}") {
		line := p.cur.line
		// Label: IDENT ":" (not followed by a type, i.e. not a local decl).
		if p.cur.kind == tokIdent && p.next.kind == tokPunct && p.next.text == ":" &&
			!p.isIdent("local") {
			if pendingLabel != "" {
				return nil, p.errf("two consecutive labels (%s, %s)", pendingLabel, p.cur.text)
			}
			pendingLabel = p.cur.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		stmts, err := p.parseStmt(m)
		if err != nil {
			return nil, err
		}
		for _, s := range stmts {
			emit(s, line)
		}
	}
	if pendingLabel != "" {
		s := &ir.NopStmt{}
		setLabel(s, pendingLabel)
		body = append(body, s)
	}
	return body, p.advance() // consume "}"
}

// setLabel and setLine position a freshly parsed statement. Statement
// implementations that do not embed ir.StmtBase (and so lack the setter)
// simply go unpositioned — a missing setter must never panic the parser.
func setLabel(s ir.Stmt, l string) {
	if x, ok := s.(interface{ SetLabel(string) }); ok {
		x.SetLabel(l)
	}
}

func setLine(s ir.Stmt, n int) {
	if x, ok := s.(interface{ SetLine(int) }); ok {
		x.SetLine(n)
	}
}

// parseStmt parses one source statement; constructor sugar may expand to
// two IR statements.
func (p *parser) parseStmt(m *ir.Method) ([]ir.Stmt, error) {
	switch {
	case p.isIdent("local"):
		// "local x: T" declares a typed local; emits no statement.
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		t, err := p.typeName()
		if err != nil {
			return nil, err
		}
		l := m.Local(name)
		l.Type = t
		l.Declared = true
		return nil, nil

	case p.isIdent("if"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.kind != tokOp || p.cur.text != "*" {
			return nil, p.errf("conditions are opaque: expected '*' after 'if', found %s", p.cur)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.isIdent("goto") {
			return nil, p.errf("expected 'goto' in if statement, found %s", p.cur)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		target, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return []ir.Stmt{&ir.IfStmt{Target: target}}, nil

	case p.isIdent("goto"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		target, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return []ir.Stmt{&ir.GotoStmt{Target: target}}, nil

	case p.isIdent("return"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		// A value follows unless the next token starts a new statement.
		if p.isPunct("}") || p.startsStmt() {
			return []ir.Stmt{&ir.ReturnStmt{}}, nil
		}
		v, err := p.operand(m)
		if err != nil {
			return nil, err
		}
		return []ir.Stmt{&ir.ReturnStmt{Value: v}}, nil

	case p.isIdent("nop"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return []ir.Stmt{&ir.NopStmt{}}, nil
	}

	// Everything else begins with a path: an assignment or a call.
	return p.parsePathStmt(m)
}

// startsStmt reports whether the current token begins a new statement
// keyword, which disambiguates "return" from "return x".
func (p *parser) startsStmt() bool {
	if p.cur.kind != tokIdent {
		return false
	}
	switch p.cur.text {
	case "if", "goto", "return", "nop", "local":
		return true
	}
	// A label "X:" starts a statement, and so does an assignment or call
	// beginning with this identifier.
	if p.next.kind == tokPunct {
		switch p.next.text {
		case ":", "=", ".", "(", "[":
			return true
		}
	}
	return false
}
