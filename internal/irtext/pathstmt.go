package irtext

import (
	"strings"

	"flowdroid/internal/ir"
)

// path is a dot-separated identifier chain awaiting interpretation: a
// local, a local.field access, a static Class.field access, or the target
// of a call.
type path struct {
	segs []string
	line int
}

func (p *parser) parsePath() (path, error) {
	line := p.cur.line
	var segs []string
	seg, err := p.expectIdent()
	if err != nil {
		return path{}, err
	}
	segs = append(segs, seg)
	for p.isPunct(".") {
		if err := p.advance(); err != nil {
			return path{}, err
		}
		seg, err := p.expectIdent()
		if err != nil {
			return path{}, err
		}
		segs = append(segs, seg)
	}
	return path{segs: segs, line: line}, nil
}

// isLocal reports whether name is a declared or previously assigned local
// of m. It only disambiguates multi-segment paths (local.field versus
// Class.staticfield); single-segment operands always denote locals, which
// the parser creates on first mention. Whether a local is actually
// assigned before use is checked after parsing by the CFG-aware
// definite-assignment analyzer (internal/irlint, "defuse"), not here.
func isLocal(m *ir.Method, name string) bool { return m.LookupLocal(name) != nil }

// parsePathStmt parses a statement beginning with a path: an assignment
// (to a local, field, static field or array element) or a stand-alone call.
func (p *parser) parsePathStmt(m *ir.Method) ([]ir.Stmt, error) {
	pa, err := p.parsePath()
	if err != nil {
		return nil, err
	}

	// Stand-alone call: path "(" args ")".
	if p.isPunct("(") {
		call, err := p.finishCall(m, pa)
		if err != nil {
			return nil, err
		}
		return []ir.Stmt{&ir.InvokeStmt{Call: call}}, nil
	}

	// Array store: local "[" index "]" "=" operand.
	if p.isPunct("[") {
		if len(pa.segs) != 1 {
			return nil, p.errf("array base must be a local, found %s", strings.Join(pa.segs, "."))
		}
		base := m.Local(pa.segs[0])
		if err := p.advance(); err != nil {
			return nil, err
		}
		idx, err := p.operand(m)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		rhs, err := p.operand(m)
		if err != nil {
			return nil, err
		}
		return []ir.Stmt{&ir.AssignStmt{LHS: &ir.ArrayRef{Base: base, Index: idx}, RHS: rhs}}, nil
	}

	// Otherwise an assignment: lvalue "=" rvalue.
	lhs, err := p.lvalueOf(m, pa)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	return p.parseRvalue(m, lhs)
}

// lvalueOf interprets a path as an assignment target.
func (p *parser) lvalueOf(m *ir.Method, pa path) (ir.Value, error) {
	switch {
	case len(pa.segs) == 1:
		// Assignment to a local defines it.
		return m.Local(pa.segs[0]), nil
	case isLocal(m, pa.segs[0]):
		if len(pa.segs) != 2 {
			return nil, p.errf("chained field access %s is not three-address form; introduce a temporary",
				strings.Join(pa.segs, "."))
		}
		return &ir.FieldRef{Base: m.LookupLocal(pa.segs[0]), Name: pa.segs[1]}, nil
	default:
		cls := strings.Join(pa.segs[:len(pa.segs)-1], ".")
		return &ir.StaticFieldRef{Class: cls, Name: pa.segs[len(pa.segs)-1]}, nil
	}
}

// operand parses a simple value: a local or a literal.
func (p *parser) operand(m *ir.Method) (ir.Value, error) {
	switch p.cur.kind {
	case tokInt:
		v := ir.IntOf(p.cur.num)
		return v, p.advance()
	case tokString:
		v := ir.StringOf(p.cur.text)
		return v, p.advance()
	case tokRes:
		v := ir.ResOf(p.cur.text)
		return v, p.advance()
	case tokIdent:
		if p.cur.text == "null" {
			return ir.NullOf(), p.advance()
		}
		return m.Local(p.cur.text), p.advance()
	}
	return nil, p.errf("expected operand, found %s", p.cur)
}

// finishCall parses "(args)" after a call target path and builds the
// invocation expression.
func (p *parser) finishCall(m *ir.Method, pa path) (*ir.InvokeExpr, error) {
	if err := p.advance(); err != nil { // consume "("
		return nil, err
	}
	var args []ir.Value
	for !p.isPunct(")") {
		a, err := p.operand(m)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.advance(); err != nil { // consume ")"
		return nil, err
	}
	if len(pa.segs) < 2 {
		return nil, p.errf("call target %q needs a receiver local or class name", pa.segs[0])
	}
	name := pa.segs[len(pa.segs)-1]
	if len(pa.segs) == 2 && isLocal(m, pa.segs[0]) {
		base := m.LookupLocal(pa.segs[0])
		cls := ""
		if base.Type.IsRef() {
			cls = base.Type.Name
		}
		return &ir.InvokeExpr{
			Kind: ir.VirtualInvoke,
			Base: base,
			Ref:  ir.MethodRef{Class: cls, Name: name, NArgs: len(args)},
			Args: args,
		}, nil
	}
	cls := strings.Join(pa.segs[:len(pa.segs)-1], ".")
	return &ir.InvokeExpr{
		Kind: ir.StaticInvoke,
		Ref:  ir.MethodRef{Class: cls, Name: name, NArgs: len(args)},
		Args: args,
	}, nil
}

// parseRvalue parses the right-hand side of "lhs =" and returns the
// resulting statement(s); constructor sugar expands to two statements.
func (p *parser) parseRvalue(m *ir.Method, lhs ir.Value) ([]ir.Stmt, error) {
	switch {
	case p.isIdent("new"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		cls, err := p.qname()
		if err != nil {
			return nil, err
		}
		alloc := &ir.AssignStmt{LHS: lhs, RHS: &ir.New{Type: ir.Ref(cls)}}
		if !p.isPunct("(") {
			return []ir.Stmt{alloc}, nil
		}
		// Constructor sugar: "x = new C(a, b)" expands to the allocation
		// followed by a special-invoke of C.init.
		if err := p.advance(); err != nil {
			return nil, err
		}
		var args []ir.Value
		for !p.isPunct(")") {
			a, err := p.operand(m)
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		recv, ok := lhs.(*ir.Local)
		if !ok {
			return nil, p.errf("constructor result must be assigned to a local")
		}
		ctor := &ir.InvokeStmt{Call: &ir.InvokeExpr{
			Kind: ir.SpecialInvoke,
			Base: recv,
			Ref:  ir.MethodRef{Class: cls, Name: "init", NArgs: len(args)},
			Args: args,
		}}
		return []ir.Stmt{alloc, ctor}, nil

	case p.isIdent("newarray"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.typeName()
		if err != nil {
			return nil, err
		}
		return []ir.Stmt{&ir.AssignStmt{LHS: lhs, RHS: &ir.NewArray{Elem: t}}}, nil

	case p.isPunct("("): // cast: "(C) x"
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.typeName()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		x, err := p.operand(m)
		if err != nil {
			return nil, err
		}
		return []ir.Stmt{&ir.AssignStmt{LHS: lhs, RHS: &ir.Cast{To: t, X: x}}}, nil

	case p.cur.kind == tokInt || p.cur.kind == tokString || p.cur.kind == tokRes ||
		p.isIdent("null"):
		v, err := p.operand(m)
		if err != nil {
			return nil, err
		}
		return p.maybeBinop(m, lhs, v)
	}

	// A path: local copy, field load, static load, array load, binop or
	// call with result.
	pa, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if p.isPunct("(") {
		call, err := p.finishCall(m, pa)
		if err != nil {
			return nil, err
		}
		return []ir.Stmt{&ir.AssignStmt{LHS: lhs, RHS: call}}, nil
	}
	if p.isPunct("[") {
		if len(pa.segs) != 1 {
			return nil, p.errf("array base must be a local")
		}
		base := m.Local(pa.segs[0])
		if err := p.advance(); err != nil {
			return nil, err
		}
		idx, err := p.operand(m)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		return []ir.Stmt{&ir.AssignStmt{LHS: lhs, RHS: &ir.ArrayRef{Base: base, Index: idx}}}, nil
	}
	v, err := p.pathValue(m, pa)
	if err != nil {
		return nil, err
	}
	return p.maybeBinop(m, lhs, v)
}

// pathValue interprets a path in value position.
func (p *parser) pathValue(m *ir.Method, pa path) (ir.Value, error) {
	switch {
	case len(pa.segs) == 1:
		return m.Local(pa.segs[0]), nil
	case isLocal(m, pa.segs[0]):
		if len(pa.segs) != 2 {
			return nil, p.errf("chained field access %s is not three-address form; introduce a temporary",
				strings.Join(pa.segs, "."))
		}
		return &ir.FieldRef{Base: m.LookupLocal(pa.segs[0]), Name: pa.segs[1]}, nil
	default:
		cls := strings.Join(pa.segs[:len(pa.segs)-1], ".")
		return &ir.StaticFieldRef{Class: cls, Name: pa.segs[len(pa.segs)-1]}, nil
	}
}

// maybeBinop checks for a trailing binary operator after the first operand
// and builds either a plain assignment or a binop assignment.
func (p *parser) maybeBinop(m *ir.Method, lhs, first ir.Value) ([]ir.Stmt, error) {
	if p.cur.kind != tokOp {
		return []ir.Stmt{&ir.AssignStmt{LHS: lhs, RHS: first}}, nil
	}
	if !ir.IsSimple(first) {
		return nil, p.errf("binary operands must be locals or constants; introduce a temporary")
	}
	op := p.cur.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	second, err := p.operand(m)
	if err != nil {
		return nil, err
	}
	return []ir.Stmt{&ir.AssignStmt{LHS: lhs, RHS: &ir.Binop{Op: op, L: first, R: second}}}, nil
}
