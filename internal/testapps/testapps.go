// Package testapps provides shared in-memory application packages used by
// tests across the repository, most prominently the paper's Listing 1
// example (an activity leaking a password field via SMS from an
// XML-declared button callback).
package testapps

// LeakageApp is the running example of the paper (Listing 1): onRestart
// reads the password field into a User object stored in an activity
// field; the sendMessage button callback (declared in layout XML) sends
// it via SMS. Detecting the leak requires the lifecycle model (onRestart
// before sendMessage), XML callback wiring, layout password sources and
// field sensitivity.
var LeakageApp = map[string]string{
	"AndroidManifest.xml": `<?xml version="1.0"?>
<manifest xmlns:android="http://schemas.android.com/apk/res/android"
          package="com.example.leakage">
  <application>
    <activity android:name=".LeakageApp">
      <intent-filter>
        <action android:name="android.intent.action.MAIN"/>
      </intent-filter>
    </activity>
    <activity android:name=".DisabledActivity" android:enabled="false"/>
  </application>
</manifest>`,
	"res/layout/main.xml": `<?xml version="1.0"?>
<LinearLayout xmlns:android="http://schemas.android.com/apk/res/android">
  <EditText android:id="@+id/username"/>
  <EditText android:id="@+id/pwdString" android:inputType="textPassword"/>
  <Button android:id="@+id/button1" android:onClick="sendMessage"/>
</LinearLayout>`,
	"classes.ir": `
class com.example.leakage.User {
  field name: java.lang.String
  field pwd: java.lang.String
  method init(n: java.lang.String, p: java.lang.String): void {
    this.name = n
    this.pwd = p
  }
  method getName(): java.lang.String {
    r = this.name
    return r
  }
  method getpwd(): java.lang.String {
    r = this.pwd
    return r
  }
}

class com.example.leakage.LeakageApp extends android.app.Activity {
  field user: com.example.leakage.User

  method onCreate(b: android.os.Bundle): void {
    this.setContentView(@layout/main)
  }

  method onRestart(): void {
    ut = this.findViewById(@id/username)
    local unameText: android.widget.EditText
    unameText = (android.widget.EditText) ut
    pt = this.findViewById(@id/pwdString)
    local pwdText: android.widget.EditText
    pwdText = (android.widget.EditText) pt
    uname = unameText.getText()
    pwd = pwdText.getText()
    if * goto skip
    u = new com.example.leakage.User(uname, pwd)
    this.user = u
  skip:
    return
  }

  // Declared in res/layout/main.xml via android:onClick.
  method sendMessage(v: android.view.View): void {
    u = this.user
    if * goto out
    pwd = u.getpwd()
    obf = pwd + "_"
    name = u.getName()
    msg = "User: " + name
    msg2 = msg + obf
    sms = android.telephony.SmsManager.getDefault()
    sms.sendTextMessage("+44 020 7321 0905", null, msg2, null, null)
  out:
    return
  }
}

class com.example.leakage.DisabledActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    return
  }
}
`,
}

// LocationApp has its activity implement LocationListener and register
// itself imperatively (the common pattern DroidBench's LocationLeak tests
// use). The framework feeds location data to onLocationChanged, which
// stores it in an activity field; an XML-declared click handler leaks it
// to the log. Exercises imperative callback discovery and
// callback-parameter sources.
var LocationApp = map[string]string{
	"AndroidManifest.xml": `<manifest package="com.example.loc">
  <application><activity android:name=".LocActivity"/></application>
</manifest>`,
	"res/layout/main.xml": `<LinearLayout>
  <Button android:id="@+id/go" android:onClick="leakIt"/>
</LinearLayout>`,
	"classes.ir": `
class com.example.loc.LocActivity extends android.app.Activity
    implements android.location.LocationListener {
  field last: java.lang.String

  method onCreate(b: android.os.Bundle): void {
    this.setContentView(@layout/main)
    lmRaw = this.getSystemService("location")
    local lm: android.location.LocationManager
    lm = (android.location.LocationManager) lmRaw
    lm.requestLocationUpdates("gps", 0, 0, this)
  }

  method onLocationChanged(l: android.location.Location): void {
    s = l.toString()
    this.last = s
  }
  method onProviderEnabled(p: java.lang.String): void {
    return
  }
  method onProviderDisabled(p: java.lang.String): void {
    return
  }
  method onStatusChanged(p: java.lang.String, st: int): void {
    return
  }

  method leakIt(v: android.view.View): void {
    s = this.last
    android.util.Log.i("loc", s)
    return
  }
}
`,
}

// ReflectionApp leaks the device ID through a reflectively invoked
// method: the class and method names are string constants, so the
// constant-propagation pass resolves the forName/newInstance/invoke
// chain into real call edges and the taint analysis sees the flow.
// With reflection resolution off the invoke site is opaque and the
// leak disappears.
var ReflectionApp = map[string]string{
	"AndroidManifest.xml": `<?xml version="1.0"?>
<manifest xmlns:android="http://schemas.android.com/apk/res/android"
          package="com.example.reflect">
  <application>
    <activity android:name=".ReflectionApp"/>
  </application>
</manifest>`,
	"classes.ir": `
class com.example.reflect.Sink {
  method leak(msg: java.lang.String): void {
    android.util.Log.i("reflect", msg)
    return
  }
}

class com.example.reflect.ReflectionApp extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    tmRaw = this.getSystemService("phone")
    local tm: android.telephony.TelephonyManager
    tm = (android.telephony.TelephonyManager) tmRaw
    imei = tm.getDeviceId()
    clz = java.lang.Class.forName("com.example.reflect.Sink")
    obj = clz.newInstance()
    mth = clz.getMethod("leak")
    r = mth.invoke(obj, imei)
    return
  }
}
`,
}

// DynamicReflectionApp routes the same flow through a reflective call
// whose class name comes from the incoming intent: no constant-string
// analysis can resolve it, so the run must report zero leaks but a
// non-empty soundness report naming the opaque sites.
var DynamicReflectionApp = map[string]string{
	"AndroidManifest.xml": `<?xml version="1.0"?>
<manifest xmlns:android="http://schemas.android.com/apk/res/android"
          package="com.example.dynreflect">
  <application>
    <activity android:name=".DynamicApp"/>
  </application>
</manifest>`,
	"classes.ir": `
class com.example.dynreflect.Sink {
  method leak(msg: java.lang.String): void {
    android.util.Log.i("reflect", msg)
    return
  }
}

class com.example.dynreflect.DynamicApp extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    tmRaw = this.getSystemService("phone")
    local tm: android.telephony.TelephonyManager
    tm = (android.telephony.TelephonyManager) tmRaw
    imei = tm.getDeviceId()
    it = this.getIntent()
    name = it.getStringExtra("cls")
    clz = java.lang.Class.forName(name)
    obj = clz.newInstance()
    mth = clz.getMethod("leak")
    r = mth.invoke(obj, imei)
    return
  }
}
`,
}
