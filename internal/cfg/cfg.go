// Package cfg provides intraprocedural control-flow graphs over IR method
// bodies and the interprocedural CFG (ICFG) the IFDS solvers traverse. The
// ICFG combines per-method CFGs with a call graph, exposing the node
// relations the Reps-Horwitz-Sagiv framework needs: successors,
// predecessors, callees of call sites, callers of methods, start points
// and exits.
package cfg

import (
	"sync"
	"sync/atomic"

	"flowdroid/internal/callgraph"
	"flowdroid/internal/ir"
)

// MethodCFG is the control-flow graph of one method body. Nodes are the
// body's statements; edge structure follows fallthrough, gotos and the
// both-ways branching of opaque conditionals.
type MethodCFG struct {
	Method *ir.Method
	succs  [][]int
	preds  [][]int
}

// New builds the CFG for a finalized method body.
func New(m *ir.Method) *MethodCFG {
	body := m.Body()
	c := &MethodCFG{
		Method: m,
		succs:  make([][]int, len(body)),
		preds:  make([][]int, len(body)),
	}
	addEdge := func(from, to int) {
		if to >= len(body) {
			return
		}
		c.succs[from] = append(c.succs[from], to)
		c.preds[to] = append(c.preds[to], from)
	}
	for i, s := range body {
		switch s := s.(type) {
		case *ir.GotoStmt:
			addEdge(i, s.TargetIndex)
		case *ir.IfStmt:
			// Opaque condition: both branches possible.
			addEdge(i, i+1)
			if s.TargetIndex != i+1 {
				addEdge(i, s.TargetIndex)
			}
		case *ir.ReturnStmt:
			// No successors.
		default:
			addEdge(i, i+1)
		}
	}
	return c
}

// Succs returns the intraprocedural successors of s.
func (c *MethodCFG) Succs(s ir.Stmt) []ir.Stmt { return c.stmtsAt(c.succs[s.Index()]) }

// Preds returns the intraprocedural predecessors of s.
func (c *MethodCFG) Preds(s ir.Stmt) []ir.Stmt { return c.stmtsAt(c.preds[s.Index()]) }

func (c *MethodCFG) stmtsAt(idx []int) []ir.Stmt {
	body := c.Method.Body()
	out := make([]ir.Stmt, len(idx))
	for i, j := range idx {
		out[i] = body[j]
	}
	return out
}

// Cache is a concurrency-safe store of per-method CFGs. It can be shared
// across ICFGs (the scene layer shares one per program, so degrade-ladder
// retries and call-graph swaps never rebuild a method's CFG) and is safe
// for the parallel IFDS workers that reach CFGOf concurrently.
type Cache struct {
	mu   sync.RWMutex
	cfgs map[*ir.Method]*MethodCFG

	hits, misses atomic.Int64
}

// NewCache creates an empty CFG cache.
func NewCache() *Cache {
	return &Cache{cfgs: make(map[*ir.Method]*MethodCFG)}
}

// CFGOf returns the cached CFG of m, building it on first use.
func (c *Cache) CFGOf(m *ir.Method) *MethodCFG {
	c.mu.RLock()
	cached := c.cfgs[m]
	c.mu.RUnlock()
	if cached != nil {
		c.hits.Add(1)
		return cached
	}
	built := New(m)
	c.mu.Lock()
	if prior, ok := c.cfgs[m]; ok {
		// Another goroutine built it first; keep one canonical CFG.
		built = prior
	} else {
		c.cfgs[m] = built
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return built
}

// Prebuild populates the cache for the given methods up front.
func (c *Cache) Prebuild(methods []*ir.Method) {
	for _, m := range methods {
		if !m.Abstract() {
			c.CFGOf(m)
		}
	}
}

// Stats returns the cumulative hit and miss (= build) counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cached CFGs.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.cfgs)
}

// CacheProvider is implemented by program models (the scene layer) that
// carry a shared CFG cache; NewICFG adopts it instead of creating a
// private one.
type CacheProvider interface {
	CFGs() *Cache
}

// ICFG is the interprocedural control-flow graph: per-method CFGs stitched
// together by a call graph. CFGs are built lazily through a synchronized
// cache, so the parallel IFDS workers may query concurrently.
type ICFG struct {
	Prog  ir.Hierarchy
	Graph *callgraph.Graph

	cache *Cache
}

// NewICFG wraps a program model and call graph into an ICFG. When the
// model carries a shared CFG cache (scene.Scene does), that cache is
// adopted, so successive ICFGs over the same program reuse every CFG
// already built.
func NewICFG(h ir.Hierarchy, g *callgraph.Graph) *ICFG {
	cache := NewCache()
	if cp, ok := h.(CacheProvider); ok {
		cache = cp.CFGs()
	}
	return &ICFG{Prog: h, Graph: g, cache: cache}
}

// CFGOf returns the (cached) intraprocedural CFG of m.
func (g *ICFG) CFGOf(m *ir.Method) *MethodCFG { return g.cache.CFGOf(m) }

// SuccsOf returns the intraprocedural successors of s (the return sites
// when s is a call).
func (g *ICFG) SuccsOf(s ir.Stmt) []ir.Stmt { return g.CFGOf(s.Method()).Succs(s) }

// PredsOf returns the intraprocedural predecessors of s.
func (g *ICFG) PredsOf(s ir.Stmt) []ir.Stmt { return g.CFGOf(s.Method()).Preds(s) }

// IsCall reports whether s is a call statement.
func (g *ICFG) IsCall(s ir.Stmt) bool { return ir.IsCall(s) }

// CalleesOf returns the callees of call site s that have bodies the solver
// can descend into; bodyless stubs are handled by call-to-return flow
// functions instead.
func (g *ICFG) CalleesOf(s ir.Stmt) []*ir.Method {
	var out []*ir.Method
	for _, m := range g.Graph.CalleesOf(s) {
		if !m.Abstract() {
			out = append(out, m)
		}
	}
	return out
}

// AllCalleesOf returns all call targets including stubs.
func (g *ICFG) AllCalleesOf(s ir.Stmt) []*ir.Method { return g.Graph.CalleesOf(s) }

// CallersOf returns the call sites that may invoke m.
func (g *ICFG) CallersOf(m *ir.Method) []ir.Stmt { return g.Graph.CallersOf(m) }

// StartPoint returns m's entry statement.
func (g *ICFG) StartPoint(m *ir.Method) ir.Stmt { return m.EntryStmt() }

// ExitStmts returns m's return statements.
func (g *ICFG) ExitStmts(m *ir.Method) []ir.Stmt { return m.ExitStmts() }

// IsExit reports whether s is a return statement.
func (g *ICFG) IsExit(s ir.Stmt) bool {
	_, ok := s.(*ir.ReturnStmt)
	return ok
}

// IsStartPoint reports whether s is the first statement of its method.
func (g *ICFG) IsStartPoint(s ir.Stmt) bool { return s.Index() == 0 }

// CallsIn returns the call statements inside m.
func (g *ICFG) CallsIn(m *ir.Method) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range m.Body() {
		if ir.IsCall(s) {
			out = append(out, s)
		}
	}
	return out
}
