// Package cfg provides intraprocedural control-flow graphs over IR method
// bodies and the interprocedural CFG (ICFG) the IFDS solvers traverse. The
// ICFG combines per-method CFGs with a call graph, exposing the node
// relations the Reps-Horwitz-Sagiv framework needs: successors,
// predecessors, callees of call sites, callers of methods, start points
// and exits.
package cfg

import (
	"flowdroid/internal/callgraph"
	"flowdroid/internal/ir"
)

// MethodCFG is the control-flow graph of one method body. Nodes are the
// body's statements; edge structure follows fallthrough, gotos and the
// both-ways branching of opaque conditionals.
type MethodCFG struct {
	Method *ir.Method
	succs  [][]int
	preds  [][]int
}

// New builds the CFG for a finalized method body.
func New(m *ir.Method) *MethodCFG {
	body := m.Body()
	c := &MethodCFG{
		Method: m,
		succs:  make([][]int, len(body)),
		preds:  make([][]int, len(body)),
	}
	addEdge := func(from, to int) {
		if to >= len(body) {
			return
		}
		c.succs[from] = append(c.succs[from], to)
		c.preds[to] = append(c.preds[to], from)
	}
	for i, s := range body {
		switch s := s.(type) {
		case *ir.GotoStmt:
			addEdge(i, s.TargetIndex)
		case *ir.IfStmt:
			// Opaque condition: both branches possible.
			addEdge(i, i+1)
			if s.TargetIndex != i+1 {
				addEdge(i, s.TargetIndex)
			}
		case *ir.ReturnStmt:
			// No successors.
		default:
			addEdge(i, i+1)
		}
	}
	return c
}

// Succs returns the intraprocedural successors of s.
func (c *MethodCFG) Succs(s ir.Stmt) []ir.Stmt { return c.stmtsAt(c.succs[s.Index()]) }

// Preds returns the intraprocedural predecessors of s.
func (c *MethodCFG) Preds(s ir.Stmt) []ir.Stmt { return c.stmtsAt(c.preds[s.Index()]) }

func (c *MethodCFG) stmtsAt(idx []int) []ir.Stmt {
	body := c.Method.Body()
	out := make([]ir.Stmt, len(idx))
	for i, j := range idx {
		out[i] = body[j]
	}
	return out
}

// ICFG is the interprocedural control-flow graph: per-method CFGs stitched
// together by a call graph. CFGs are built lazily and cached.
type ICFG struct {
	Prog  *ir.Program
	Graph *callgraph.Graph

	cfgs map[*ir.Method]*MethodCFG
}

// NewICFG wraps a program and call graph into an ICFG.
func NewICFG(prog *ir.Program, g *callgraph.Graph) *ICFG {
	return &ICFG{Prog: prog, Graph: g, cfgs: make(map[*ir.Method]*MethodCFG)}
}

// CFGOf returns the (cached) intraprocedural CFG of m.
func (g *ICFG) CFGOf(m *ir.Method) *MethodCFG {
	if c, ok := g.cfgs[m]; ok {
		return c
	}
	c := New(m)
	g.cfgs[m] = c
	return c
}

// SuccsOf returns the intraprocedural successors of s (the return sites
// when s is a call).
func (g *ICFG) SuccsOf(s ir.Stmt) []ir.Stmt { return g.CFGOf(s.Method()).Succs(s) }

// PredsOf returns the intraprocedural predecessors of s.
func (g *ICFG) PredsOf(s ir.Stmt) []ir.Stmt { return g.CFGOf(s.Method()).Preds(s) }

// IsCall reports whether s is a call statement.
func (g *ICFG) IsCall(s ir.Stmt) bool { return ir.IsCall(s) }

// CalleesOf returns the callees of call site s that have bodies the solver
// can descend into; bodyless stubs are handled by call-to-return flow
// functions instead.
func (g *ICFG) CalleesOf(s ir.Stmt) []*ir.Method {
	var out []*ir.Method
	for _, m := range g.Graph.CalleesOf(s) {
		if !m.Abstract() {
			out = append(out, m)
		}
	}
	return out
}

// AllCalleesOf returns all call targets including stubs.
func (g *ICFG) AllCalleesOf(s ir.Stmt) []*ir.Method { return g.Graph.CalleesOf(s) }

// CallersOf returns the call sites that may invoke m.
func (g *ICFG) CallersOf(m *ir.Method) []ir.Stmt { return g.Graph.CallersOf(m) }

// StartPoint returns m's entry statement.
func (g *ICFG) StartPoint(m *ir.Method) ir.Stmt { return m.EntryStmt() }

// ExitStmts returns m's return statements.
func (g *ICFG) ExitStmts(m *ir.Method) []ir.Stmt { return m.ExitStmts() }

// IsExit reports whether s is a return statement.
func (g *ICFG) IsExit(s ir.Stmt) bool {
	_, ok := s.(*ir.ReturnStmt)
	return ok
}

// IsStartPoint reports whether s is the first statement of its method.
func (g *ICFG) IsStartPoint(s ir.Stmt) bool { return s.Index() == 0 }

// CallsIn returns the call statements inside m.
func (g *ICFG) CallsIn(m *ir.Method) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range m.Body() {
		if ir.IsCall(s) {
			out = append(out, s)
		}
	}
	return out
}
