package cfg

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"flowdroid/internal/ir"
)

// randMethod builds a random structured body: straight-line assignments
// interleaved with forward branches and occasional back edges.
func randMethod(r *rand.Rand, n int) *ir.Method {
	p := ir.NewProgram()
	cb := ir.NewClassIn(p, "G", "")
	mb := cb.StaticMethod("m", ir.Void)
	x := mb.Local("x")
	mb.Assign(x, ir.IntOf(0))
	labels := 0
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0:
			mb.Assign(x, ir.IntOf(int64(i)))
		case 1: // forward skip
			labels++
			l := fmt.Sprintf("F%d", labels)
			mb.If(l)
			mb.Assign(x, ir.IntOf(int64(i)))
			mb.Label(l).Nop()
		case 2: // loop
			labels++
			head := fmt.Sprintf("H%d", labels)
			out := fmt.Sprintf("O%d", labels)
			mb.Label(head).If(out)
			mb.Assign(x, ir.IntOf(int64(i)))
			mb.Goto(head)
			mb.Label(out).Nop()
		case 3:
			mb.Nop()
		}
	}
	mb.Return(nil)
	mb.Done()
	if err := p.Link(); err != nil {
		panic(err)
	}
	return p.Class("G").Method("m", 0)
}

// TestQuickCFGDuality: succs and preds are exact duals, returns have no
// successors, and every statement except loop-unreachable tails is
// forward-reachable from the entry.
func TestQuickCFGDuality(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := randMethod(r, int(size%25))
		c := New(m)
		body := m.Body()
		for _, s := range body {
			for _, succ := range c.Succs(s) {
				found := false
				for _, back := range c.Preds(succ) {
					if back == s {
						found = true
					}
				}
				if !found {
					return false
				}
			}
			if _, isRet := s.(*ir.ReturnStmt); isRet && len(c.Succs(s)) != 0 {
				return false
			}
			if _, isRet := s.(*ir.ReturnStmt); !isRet && len(c.Succs(s)) == 0 {
				return false // every non-return flows somewhere
			}
		}
		// Forward reachability from the entry covers the whole body for
		// programs from this generator (no dead tails are produced).
		seen := make(map[int]bool)
		stack := []ir.Stmt{body[0]}
		seen[0] = true
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nxt := range c.Succs(s) {
				if !seen[nxt.Index()] {
					seen[nxt.Index()] = true
					stack = append(stack, nxt)
				}
			}
		}
		return len(seen) == len(body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
