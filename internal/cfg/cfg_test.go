package cfg

import (
	"context"
	"testing"

	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
	"flowdroid/internal/pta"
)

const loopSrc = `
class A {
  static method m(): void {
  top:
    x = 1
    if * goto done
    y = 2
    goto top
  done:
    return
  }
}
`

func TestBranchesAndLoops(t *testing.T) {
	prog, err := irtext.ParseProgram(loopSrc, "l.ir")
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Class("A").Method("m", 0)
	c := New(m)
	body := m.Body()
	// body: 0 x=1(top) 1 if 2 y=2 3 goto top 4 return(done)
	ifStmt := body[1]
	succ := c.Succs(ifStmt)
	if len(succ) != 2 {
		t.Fatalf("if should have 2 successors, got %d", len(succ))
	}
	if succ[0].Index() != 2 || succ[1].Index() != 4 {
		t.Errorf("if successors = %d,%d, want 2,4", succ[0].Index(), succ[1].Index())
	}
	gotoStmt := body[3]
	succ = c.Succs(gotoStmt)
	if len(succ) != 1 || succ[0].Index() != 0 {
		t.Errorf("goto should jump to index 0, got %v", succ)
	}
	// The loop head has two predecessors: method entry has none, but the
	// back edge targets index 0.
	preds := c.Preds(body[0])
	if len(preds) != 1 || preds[0].Index() != 3 {
		t.Errorf("loop head preds = %v, want the back edge only", preds)
	}
	ret := body[4]
	if len(c.Succs(ret)) != 0 {
		t.Error("return must have no successors")
	}
}

const icfgSrc = `
class A {
  static method callee(x: java.lang.String): java.lang.String {
    return x
  }
  static method main(): void {
    s = "v"
    r = A.callee(s)
    t = r
    return
  }
}
`

func TestICFG(t *testing.T) {
	prog, err := irtext.ParseProgram(icfgSrc, "i.ir")
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Class("A").Method("main", 0)
	callee := prog.Class("A").Method("callee", 1)
	res := pta.Build(context.Background(), prog, main)
	g := NewICFG(prog, res.Graph)

	var callSite ir.Stmt
	for _, s := range main.Body() {
		if ir.IsCall(s) {
			callSite = s
		}
	}
	if callSite == nil {
		t.Fatal("no call site found")
	}
	callees := g.CalleesOf(callSite)
	if len(callees) != 1 || callees[0] != callee {
		t.Fatalf("CalleesOf = %v, want [A.callee/1]", callees)
	}
	callers := g.CallersOf(callee)
	if len(callers) != 1 || callers[0] != callSite {
		t.Errorf("CallersOf = %v, want the call site", callers)
	}
	if sp := g.StartPoint(callee); sp == nil || sp.Index() != 0 {
		t.Error("start point of callee should be its first statement")
	}
	exits := g.ExitStmts(callee)
	if len(exits) != 1 || !g.IsExit(exits[0]) {
		t.Errorf("exits = %v", exits)
	}
	// Return site of the call is the statement after it.
	rs := g.SuccsOf(callSite)
	if len(rs) != 1 || rs[0].Index() != callSite.Index()+1 {
		t.Errorf("return site = %v", rs)
	}
	if !g.IsStartPoint(main.EntryStmt()) {
		t.Error("entry should be a start point")
	}
	if len(g.CallsIn(main)) != 1 {
		t.Error("main should contain exactly one call")
	}
}
