package cfg

import (
	"sync"
	"testing"

	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
)

const raceSrc = `
class R {
  static method a(): void {
    R.b()
    return
  }
  static method b(): void {
    R.c()
    return
  }
  static method c(): void {
    x = 1
    if * goto done
    goto done
  done:
    return
  }
}
`

// TestCFGOfConcurrent is the -race regression test for the lazy CFG
// cache: the parallel IFDS workers reach ICFG.CFGOf from many goroutines
// at once, so the cache must be synchronized and must hand every caller
// the same canonical CFG per method.
func TestCFGOfConcurrent(t *testing.T) {
	prog, err := irtext.ParseProgram(raceSrc, "race.ir")
	if err != nil {
		t.Fatal(err)
	}
	var methods []*ir.Method
	for _, name := range []string{"a", "b", "c"} {
		methods = append(methods, prog.Class("R").Method(name, 0))
	}
	cache := NewCache()
	const workers = 16
	got := make([][]*MethodCFG, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 100; round++ {
				for _, m := range methods {
					c := cache.CFGOf(m)
					if round == 0 {
						got[w] = append(got[w], c)
					}
				}
			}
		}()
	}
	wg.Wait()
	// Every worker must have observed the same canonical CFG pointers.
	for w := 1; w < workers; w++ {
		for i := range methods {
			if got[w][i] != got[0][i] {
				t.Fatalf("worker %d saw a different CFG for %s", w, methods[i])
			}
		}
	}
	hits, misses := cache.Stats()
	if misses < int64(len(methods)) {
		t.Errorf("misses = %d, want >= %d (one build per method)", misses, len(methods))
	}
	if hits == 0 {
		t.Error("expected cache hits after the first round")
	}
	if cache.Len() != len(methods) {
		t.Errorf("cache holds %d CFGs, want %d", cache.Len(), len(methods))
	}
}
