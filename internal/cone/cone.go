// Package cone implements the backward reachability-cone pass of the
// demand-driven query mode: starting from the statements that match the
// queried sinks, it walks the call relation in reverse (resolved with the
// scene's shared CHA resolver) and computes which methods can reach a
// queried sink at all. Components none of whose entry points are in the
// cone need no dummy-main modeling, and the taint solver need not explore
// call trees the query cannot observe — the BackDroid-style insight that
// a sink-targeted query only needs the slice of the program behind its
// sinks.
//
// The cone is a CHA over-approximation of any call graph the pipeline
// later builds (the points-to builder only refines CHA target sets), so
// pruning against it never loses a flow the whole-program analysis would
// report for the queried sinks. Two wider closures guard the channels a
// pure call-reachability argument misses:
//
//   - escape: methods whose call tree reaches a queried sink OR writes a
//     static field. Taint can leave an otherwise-irrelevant component
//     through static fields and surface at a sink elsewhere, so only
//     components with no entry point in this set are skippable.
//   - relevant: escape plus methods whose call tree contains a potential
//     source. The solver's zero (exploration) fact exists to discover
//     sources; descending it into a tree with no potential sources, no
//     queried sinks and no static writes cannot change the report.
package cone

import (
	"context"

	"flowdroid/internal/callgraph"
	"flowdroid/internal/ir"
	"flowdroid/internal/metrics"
	"flowdroid/internal/sourcesink"
)

// Cone is the result of the backward reachability pass for one query.
type Cone struct {
	// inCone holds the methods that can transitively reach a statement
	// matching a queried sink (the reachability cone proper).
	inCone map[*ir.Method]bool
	// escape additionally closes over static-field writers: the set that
	// decides component skippability.
	escape map[*ir.Method]bool
	// relevant additionally closes over potential sources: the set the
	// solver prunes zero-fact exploration against.
	relevant map[*ir.Method]bool

	// SinkStmts counts the statements matching a queried sink.
	SinkStmts int
}

// Build computes the cone for the manager's queried sinks over the whole
// program. Pass a scene.Scene as the hierarchy to reuse its shared
// resolver. Build walks every method body once to find sink statements,
// potential sources, static-field writes and reverse call edges, then
// closes backward from the three root sets. A cancelled context yields a
// partial (unsound) cone; callers must discard it, as the pipeline's
// truncation handling does.
func Build(ctx context.Context, h ir.Hierarchy, mgr *sourcesink.Manager) *Cone {
	return BuildWithExtra(ctx, h, mgr, nil)
}

// BuildWithExtra is Build with additional resolved call edges — site
// statement to target method — folded into the reverse call relation.
// Resolved reflective edges participate in the backward closure exactly
// like ordinary call edges: a sink reachable only through a reflective
// bridge still pulls the invoking method (and its callers) into the
// cone, keeping demand-driven pruning consistent with the reflection-
// aware call graph the pipeline builds afterwards.
func BuildWithExtra(ctx context.Context, h ir.Hierarchy, mgr *sourcesink.Manager, extra map[ir.Stmt][]*ir.Method) *Cone {
	res := callgraph.ResolverFor(h)
	c := &Cone{
		inCone:   make(map[*ir.Method]bool),
		escape:   make(map[*ir.Method]bool),
		relevant: make(map[*ir.Method]bool),
	}
	// callersOf is the reverse CHA call relation over every method body,
	// independent of any entry point — dummy-main generation happens
	// after this pass, precisely because its shape depends on the cone.
	callersOf := make(map[*ir.Method][]*ir.Method)
	var sinkRoots, writeRoots, srcRoots []*ir.Method
	classes := h.Classes()
	for ci, cls := range classes {
		if ci%64 == 0 && ctx.Err() != nil {
			return c
		}
		for _, m := range cls.Methods() {
			if m.Abstract() {
				continue
			}
			// A method whose parameters are sources (framework callbacks
			// like onLocationChanged) is a source root itself: its seeded
			// taints live under the zero context, and only zero-descend
			// from its callers links the summaries back out.
			var isSink, isWrite bool
			isSrc := len(mgr.ParamSources(m)) > 0
			for _, s := range m.Body() {
				if a, ok := s.(*ir.AssignStmt); ok {
					if _, static := a.LHS.(*ir.StaticFieldRef); static {
						isWrite = true
					}
				}
				call := ir.CallOf(s)
				if call == nil {
					continue
				}
				if _, _, ok := mgr.SinkAtCall(s); ok {
					isSink = true
					c.SinkStmts++
				}
				if mgr.PotentialSourceAt(s) {
					isSrc = true
				}
				for _, t := range res.TargetsOf(call) {
					if !t.Abstract() {
						callersOf[t] = append(callersOf[t], m)
					}
				}
				for _, t := range extra[s] {
					if !t.Abstract() {
						callersOf[t] = append(callersOf[t], m)
					}
				}
			}
			if isSink {
				sinkRoots = append(sinkRoots, m)
			}
			if isWrite {
				writeRoots = append(writeRoots, m)
			}
			if isSrc {
				srcRoots = append(srcRoots, m)
			}
		}
	}
	closeOver(c.inCone, callersOf, sinkRoots)
	closeOver(c.escape, callersOf, sinkRoots)
	closeOver(c.escape, callersOf, writeRoots)
	closeOver(c.relevant, callersOf, sinkRoots)
	closeOver(c.relevant, callersOf, writeRoots)
	closeOver(c.relevant, callersOf, srcRoots)
	if rec := metrics.From(ctx); rec != nil {
		rec.Gauge("cone.methods", metrics.Deterministic).Set(int64(len(c.inCone)))
		rec.Gauge("cone.sink_stmts", metrics.Deterministic).Set(int64(c.SinkStmts))
	}
	return c
}

// closeOver adds the roots and everything that reaches them (backward
// over callersOf) into set.
func closeOver(set map[*ir.Method]bool, callersOf map[*ir.Method][]*ir.Method, roots []*ir.Method) {
	var stack []*ir.Method
	for _, r := range roots {
		if !set[r] {
			set[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		m := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, caller := range callersOf[m] {
			if !set[caller] {
				set[caller] = true
				stack = append(stack, caller)
			}
		}
	}
}

// Reaches reports whether m can transitively reach a queried sink.
func (c *Cone) Reaches(m *ir.Method) bool { return c.inCone[m] }

// Methods is the size of the reachability cone.
func (c *Cone) Methods() int { return len(c.inCone) }

// Escapes reports whether m's call tree can reach a queried sink or write
// a static field. A component with no entry point in this set cannot
// contribute to the query's report, directly or through the static heap,
// and is safe to skip in dummy-main modeling.
func (c *Cone) Escapes(m *ir.Method) bool { return c.escape[m] }

// Relevant reports whether descending the solver's zero exploration fact
// into m can matter to the query: m's call tree contains a potential
// source, a queried sink, or a static-field write.
func (c *Cone) Relevant(m *ir.Method) bool { return c.relevant[m] }

// ComponentSkippable reports whether a component whose dummy-main entry
// points (implemented lifecycle methods plus discovered callbacks) are
// the given methods can be skipped entirely.
func (c *Cone) ComponentSkippable(entries []*ir.Method) bool {
	for _, m := range entries {
		if m != nil && c.Escapes(m) {
			return false
		}
	}
	return true
}
