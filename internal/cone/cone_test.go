package cone_test

import (
	"context"
	"testing"

	"flowdroid/internal/cone"
	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
	"flowdroid/internal/scene"
	"flowdroid/internal/sourcesink"
)

// The fixture separates the three closures: reach() hits the queried
// sink (entry() calls it), fetch() only touches a source, store() only
// writes the static heap, otherSink() hits a sink the query did not
// select, and idle() does none of it.
const coneSrc = `
class q.Api {
  static method get(): java.lang.String;
  static method put(s: java.lang.String): void;
  static method put2(s: java.lang.String): void;
}

class q.App {
  static field g: java.lang.String

  method entry(): void {
    this.reach()
    this.fetch()
    return
  }
  method reach(): void {
    s = "x"
    q.Api.put(s)
    return
  }
  method fetch(): void {
    s = q.Api.get()
    return
  }
  method store(): void {
    s = "y"
    q.App.g = s
    return
  }
  method otherSink(): void {
    s = "z"
    q.Api.put2(s)
    return
  }
  method idle(): void {
    return
  }
}
`

const coneRules = `
source <q.Api: get/0> -> return label secret
sink <q.Api: put/1> -> arg0 label out
sink <q.Api: put2/1> -> arg0 label other
`

func buildCone(t *testing.T, selectors []string) (*cone.Cone, *ir.Program) {
	t.Helper()
	prog, err := irtext.ParseProgram(coneSrc, "cone.ir")
	if err != nil {
		t.Fatal(err)
	}
	sc := scene.New(prog)
	mgr, err := sourcesink.Parse(sc, coneRules)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.RestrictSinks(selectors); err != nil {
		t.Fatal(err)
	}
	return cone.Build(context.Background(), sc, mgr), prog
}

func TestConeClosures(t *testing.T) {
	c, prog := buildCone(t, []string{"out"})
	app := prog.Class("q.App")
	m := func(name string) *ir.Method {
		mth := app.Method(name, 0)
		if mth == nil {
			t.Fatalf("fixture method %s missing", name)
		}
		return mth
	}

	if c.SinkStmts != 1 {
		t.Errorf("SinkStmts = %d, want 1 (put2 is not queried)", c.SinkStmts)
	}
	if c.Methods() != 2 {
		t.Errorf("Methods() = %d, want 2 (reach + entry)", c.Methods())
	}

	// inCone: only the sink-reaching call chain.
	for name, want := range map[string]bool{
		"reach": true, "entry": true,
		"fetch": false, "store": false, "otherSink": false, "idle": false,
	} {
		if got := c.Reaches(m(name)); got != want {
			t.Errorf("Reaches(%s) = %v, want %v", name, got, want)
		}
	}

	// escape adds static-field writers: the skippability set.
	for name, want := range map[string]bool{
		"reach": true, "entry": true, "store": true,
		"fetch": false, "otherSink": false, "idle": false,
	} {
		if got := c.Escapes(m(name)); got != want {
			t.Errorf("Escapes(%s) = %v, want %v", name, got, want)
		}
	}

	// relevant additionally adds potential sources: the zero-fact
	// pruning set.
	for name, want := range map[string]bool{
		"reach": true, "entry": true, "store": true, "fetch": true,
		"otherSink": false, "idle": false,
	} {
		if got := c.Relevant(m(name)); got != want {
			t.Errorf("Relevant(%s) = %v, want %v", name, got, want)
		}
	}

	if !c.ComponentSkippable([]*ir.Method{m("idle"), m("otherSink")}) {
		t.Error("component with only idle/unqueried-sink entries should be skippable")
	}
	if c.ComponentSkippable([]*ir.Method{m("idle"), m("entry")}) {
		t.Error("component with a sink-reaching entry must not be skippable")
	}
	if c.ComponentSkippable([]*ir.Method{m("store")}) {
		t.Error("component writing the static heap must not be skippable")
	}
	if !c.ComponentSkippable(nil) {
		t.Error("component with no entry points is trivially skippable")
	}
}

// TestConeCancelledContextIsPartial documents the contract the pipeline
// relies on: a cancelled Build returns a (possibly empty) partial cone
// instead of blocking, and the caller must discard it.
func TestConeCancelledContextIsPartial(t *testing.T) {
	prog, err := irtext.ParseProgram(coneSrc, "cone.ir")
	if err != nil {
		t.Fatal(err)
	}
	sc := scene.New(prog)
	mgr, err := sourcesink.Parse(sc, coneRules)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.RestrictSinks([]string{"out"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if c := cone.Build(ctx, sc, mgr); c.Methods() != 0 {
		t.Errorf("cancelled Build closed over %d methods, want 0", c.Methods())
	}
}
