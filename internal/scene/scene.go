// Package scene provides the shared program-model layer every analysis
// phase queries: the analogue of Soot's Scene in FlowDroid's pipeline
// (Arzt et al., PLDI 2014). A Scene wraps an ir.Program with precomputed
// subtype sets, memoized method and field resolution, a shared
// invoke-target resolver, and a synchronized per-method CFG cache, so the
// callback analysis, Spark stand-in (pta), CHA builder, ICFG and taint
// engine all hit one memoized substrate instead of re-walking the class
// graph per query.
//
// A Scene implements ir.Hierarchy with semantics identical to
// *ir.Program (the tests cross-check both on adversarial hierarchies,
// including cyclic ones). Reads are safe for concurrent use; Refresh —
// required after the program gains classes, e.g. dummy-main generation —
// must not race with readers.
package scene

import (
	"sort"
	"sync"
	"sync/atomic"

	"flowdroid/internal/callgraph"
	"flowdroid/internal/cfg"
	"flowdroid/internal/ir"
)

// Scene is the cached program model. Create with New, refresh after
// mutating the underlying program's class set.
type Scene struct {
	prog *ir.Program

	// Immutable between Refresh calls.
	classes  []*ir.Class
	supers   map[string]map[string]bool // transitive supertypes (self excluded)
	subtypes map[string][]string        // inverted, sorted, self included

	// Lazy, synchronized resolution caches.
	mu          sync.RWMutex
	methodCache map[memberKey]*ir.Method
	fieldCache  map[memberKey]*ir.Field

	resolverOnce sync.Once
	resolver     *callgraph.Resolver

	cfgs *cfg.Cache

	subtypeQueries           atomic.Int64
	methodHits, methodMisses atomic.Int64
	fieldHits, fieldMisses   atomic.Int64
	refreshes                int64
}

// memberKey identifies a member-resolution question. nargs is unused
// (-1) for field lookups.
type memberKey struct {
	class string
	name  string
	nargs int
}

// New builds a Scene over prog, precomputing the type hierarchy eagerly.
// A nil program yields a scene over an empty one, so a malformed app
// fails in the stage that actually dereferences it, not here.
func New(prog *ir.Program) *Scene {
	if prog == nil {
		prog = ir.NewProgram()
	}
	s := &Scene{prog: prog, cfgs: cfg.NewCache()}
	s.rebuild()
	return s
}

// Program returns the wrapped program.
func (s *Scene) Program() *ir.Program { return s.prog }

// Refresh recomputes the hierarchy and drops the resolution caches after
// the underlying program changed (classes or members added). The CFG
// cache is kept: method bodies are immutable once finalized, so existing
// CFGs stay valid and new methods fill in lazily.
func (s *Scene) Refresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rebuild()
	s.refreshes++
}

// rebuild recomputes every program-derived index. Callers hold s.mu (or
// own s exclusively, as New does).
func (s *Scene) rebuild() {
	s.classes = s.prog.Classes()
	s.supers = make(map[string]map[string]bool, len(s.classes))
	s.subtypes = make(map[string][]string, len(s.classes))
	for _, c := range s.classes {
		s.supers[c.Name] = s.computeSupers(c.Name)
	}
	for _, c := range s.classes {
		s.subtypes[c.Name] = append(s.subtypes[c.Name], c.Name)
		for super := range s.supers[c.Name] {
			if super != c.Name {
				s.subtypes[super] = append(s.subtypes[super], c.Name)
			}
		}
	}
	for name := range s.subtypes {
		sort.Strings(s.subtypes[name])
	}
	s.methodCache = make(map[memberKey]*ir.Method)
	s.fieldCache = make(map[memberKey]*ir.Field)
	// The resolver indexes the old class set; rebuild it lazily.
	s.resolverOnce = sync.Once{}
	s.resolver = nil
}

// computeSupers collects every name reachable from start along superclass
// and interface edges. Names of missing classes are included (they are
// valid supertypes per Program.SubtypeOf) but contribute no further
// edges; cycles are tolerated.
func (s *Scene) computeSupers(start string) map[string]bool {
	out := make(map[string]bool)
	work := []string{start}
	seen := map[string]bool{start: true}
	for len(work) > 0 {
		name := work[len(work)-1]
		work = work[:len(work)-1]
		c := s.prog.Class(name)
		if c == nil {
			continue
		}
		edges := append([]string{}, c.Interfaces...)
		if c.Super != "" {
			edges = append(edges, c.Super)
		}
		for _, e := range edges {
			if !seen[e] {
				seen[e] = true
				out[e] = true
				work = append(work, e)
			}
		}
	}
	return out
}

// Class returns the named class, or nil.
func (s *Scene) Class(name string) *ir.Class { return s.prog.Class(name) }

// Classes returns all classes in name order. The slice is shared and
// must not be mutated.
func (s *Scene) Classes() []*ir.Class { return s.classes }

// SubtypeOf reports whether sub is the same as, a subclass of, or an
// implementor of super. O(1) against the precomputed sets.
func (s *Scene) SubtypeOf(sub, super string) bool {
	s.subtypeQueries.Add(1)
	return sub == super || s.supers[sub][super]
}

// SubtypesOf returns the names of every class that is a subtype of the
// named class or interface (including itself if declared), in name
// order. The slice is shared and must not be mutated.
func (s *Scene) SubtypesOf(name string) []string {
	s.subtypeQueries.Add(1)
	return s.subtypes[name]
}

// ResolveMethod finds the method (name, nargs) starting at class and
// walking up the superclass chain, then the transitive interfaces.
// Results — including misses — are memoized.
func (s *Scene) ResolveMethod(class, name string, nargs int) *ir.Method {
	k := memberKey{class, name, nargs}
	s.mu.RLock()
	m, ok := s.methodCache[k]
	s.mu.RUnlock()
	if ok {
		s.methodHits.Add(1)
		return m
	}
	s.methodMisses.Add(1)
	m = s.prog.ResolveMethod(class, name, nargs)
	s.mu.Lock()
	s.methodCache[k] = m
	s.mu.Unlock()
	return m
}

// ResolveField finds the field by name starting at class and walking up
// the superclass chain. Results — including misses — are memoized.
func (s *Scene) ResolveField(class, name string) *ir.Field {
	k := memberKey{class, name, -1}
	s.mu.RLock()
	f, ok := s.fieldCache[k]
	s.mu.RUnlock()
	if ok {
		s.fieldHits.Add(1)
		return f
	}
	s.fieldMisses.Add(1)
	f = s.prog.ResolveField(class, name)
	s.mu.Lock()
	s.fieldCache[k] = f
	s.mu.Unlock()
	return f
}

// Resolver returns the scene's shared invoke-target resolver, built on
// first use. It implements callgraph.ResolverProvider, so BuildCHA and
// the points-to builder adopt it automatically.
func (s *Scene) Resolver() *callgraph.Resolver {
	s.resolverOnce.Do(func() { s.resolver = callgraph.NewResolver(s) })
	return s.resolver
}

// CFGs returns the scene's shared per-method CFG cache. It implements
// cfg.CacheProvider, so NewICFG adopts it automatically: CFGs survive
// call-graph swaps and degrade-ladder retries.
func (s *Scene) CFGs() *cfg.Cache { return s.cfgs }

// Stats is a snapshot of the scene's cache effectiveness counters.
type Stats struct {
	Classes        int
	SubtypeQueries int64
	MethodHits     int64
	MethodMisses   int64
	FieldHits      int64
	FieldMisses    int64
	CFGHits        int64
	CFGMisses      int64
	Refreshes      int64
}

// Stats returns a snapshot of the scene's counters.
func (s *Scene) Stats() Stats {
	s.mu.RLock()
	refreshes := s.refreshes
	classes := len(s.classes)
	s.mu.RUnlock()
	cfgHits, cfgMisses := s.cfgs.Stats()
	return Stats{
		Classes:        classes,
		SubtypeQueries: s.subtypeQueries.Load(),
		MethodHits:     s.methodHits.Load(),
		MethodMisses:   s.methodMisses.Load(),
		FieldHits:      s.fieldHits.Load(),
		FieldMisses:    s.fieldMisses.Load(),
		CFGHits:        cfgHits,
		CFGMisses:      cfgMisses,
		Refreshes:      refreshes,
	}
}

// Hierarchy interface conformance (compile-time checks).
var (
	_ ir.Hierarchy               = (*Scene)(nil)
	_ ir.Hierarchy               = (*ir.Program)(nil)
	_ callgraph.ResolverProvider = (*Scene)(nil)
	_ cfg.CacheProvider          = (*Scene)(nil)
)
