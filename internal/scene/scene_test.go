package scene_test

import (
	"fmt"
	"math/rand"
	"testing"

	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
	"flowdroid/internal/scene"
)

func parse(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := irtext.ParseProgram(src, "scene_test.ir")
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// hierarchySrc exercises interface-inherited default methods, diamond
// interface inheritance, and a superclass name that is never declared.
const hierarchySrc = `
class java.lang.Object {
}
interface Clickable {
  method onClick(v: java.lang.Object): void {
    return
  }
}
interface Pressable extends Clickable {
}
interface Touchable extends Clickable {
}
class Button implements Pressable, Touchable {
}
class ImageButton extends Button {
}
class Phantom extends missing.Superclass {
}
`

// TestDefaultMethodViaInterface: a concrete class that declares nothing
// itself resolves an inherited default method through its transitive
// interfaces, exactly as the raw program does.
func TestDefaultMethodViaInterface(t *testing.T) {
	prog := parse(t, hierarchySrc)
	sc := scene.New(prog)

	want := prog.Class("Clickable").Method("onClick", 1)
	if want == nil {
		t.Fatal("fixture broken: Clickable.onClick missing")
	}
	for _, cls := range []string{"Button", "Pressable", "Touchable"} {
		if got := sc.ResolveMethod(cls, "onClick", 1); got != want {
			t.Errorf("scene ResolveMethod(%s, onClick) = %v, want Clickable's default", cls, got)
		}
		if got := prog.ResolveMethod(cls, "onClick", 1); got != want {
			t.Errorf("program ResolveMethod(%s, onClick) = %v, want Clickable's default", cls, got)
		}
	}
	// The interface fallback consults only the queried class's own
	// interface list, not interfaces inherited through a superclass; the
	// scene must reproduce that limitation, not silently fix it.
	if got, want := sc.ResolveMethod("ImageButton", "onClick", 1),
		prog.ResolveMethod("ImageButton", "onClick", 1); got != want {
		t.Errorf("scene and program disagree on subclass-of-implementor: %v vs %v", got, want)
	}
}

// TestDiamondInterfaceInheritance: Button reaches Clickable along two
// interface paths; the subtype relation holds and the subtype listing
// contains each class exactly once.
func TestDiamondInterfaceInheritance(t *testing.T) {
	prog := parse(t, hierarchySrc)
	sc := scene.New(prog)

	if !sc.SubtypeOf("Button", "Clickable") || !sc.SubtypeOf("ImageButton", "Clickable") {
		t.Error("diamond path to Clickable not reflected in SubtypeOf")
	}
	subs := sc.SubtypesOf("Clickable")
	want := []string{"Button", "Clickable", "ImageButton", "Pressable", "Touchable"}
	if fmt.Sprint(subs) != fmt.Sprint(want) {
		t.Errorf("SubtypesOf(Clickable) = %v, want %v (each subtype once, sorted)", subs, want)
	}
}

// TestMissingSuperclassName: an undeclared superclass is still a valid
// supertype target, terminates resolution walks cleanly, and never shows
// itself in subtype listings (only declared classes do).
func TestMissingSuperclassName(t *testing.T) {
	prog := parse(t, hierarchySrc)
	sc := scene.New(prog)

	if !sc.SubtypeOf("Phantom", "missing.Superclass") {
		t.Error("SubtypeOf(Phantom, missing.Superclass) = false, want true")
	}
	if sc.SubtypeOf("Button", "missing.Superclass") {
		t.Error("unrelated class reported as subtype of the missing name")
	}
	subs := sc.SubtypesOf("missing.Superclass")
	if fmt.Sprint(subs) != fmt.Sprint([]string{"Phantom"}) {
		t.Errorf("SubtypesOf(missing.Superclass) = %v, want [Phantom]", subs)
	}
	if m := sc.ResolveMethod("Phantom", "anything", 0); m != nil {
		t.Errorf("resolution through a missing superclass returned %v, want nil", m)
	}
	// Identical answers from the uncached program.
	if !prog.SubtypeOf("Phantom", "missing.Superclass") {
		t.Error("program disagrees on SubtypeOf(Phantom, missing.Superclass)")
	}
	if fmt.Sprint(prog.SubtypesOf("missing.Superclass")) != fmt.Sprint(subs) {
		t.Error("program and scene disagree on SubtypesOf(missing.Superclass)")
	}
}

// TestCyclicHierarchyTolerated: a malformed class graph with a superclass
// cycle must not hang Scene construction or queries, and must agree with
// the program's cycle-guarded walk.
func TestCyclicHierarchyTolerated(t *testing.T) {
	prog := ir.NewProgram()
	for _, c := range []*ir.Class{
		ir.NewClass("A", "B"),
		ir.NewClass("B", "A"),
		ir.NewClass("C", "A"),
	} {
		if err := prog.AddClass(c); err != nil {
			t.Fatal(err)
		}
	}
	sc := scene.New(prog)
	cases := []struct {
		sub, super string
		want       bool
	}{
		{"A", "B", true}, {"B", "A", true}, {"C", "B", true},
		{"A", "C", false}, {"A", "A", true},
	}
	for _, c := range cases {
		if got := sc.SubtypeOf(c.sub, c.super); got != c.want {
			t.Errorf("scene SubtypeOf(%s, %s) = %v, want %v", c.sub, c.super, got, c.want)
		}
		if got := prog.SubtypeOf(c.sub, c.super); got != c.want {
			t.Errorf("program SubtypeOf(%s, %s) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

// TestResolutionCacheConsistencyAfterRefresh: cached answers — including
// negative ones — are dropped by Refresh, so resolution reflects classes
// and members added after the scene was built.
func TestResolutionCacheConsistencyAfterRefresh(t *testing.T) {
	prog := parse(t, hierarchySrc)
	sc := scene.New(prog)

	// Prime a positive and a negative cache entry.
	if sc.ResolveMethod("Button", "onClick", 1) == nil {
		t.Fatal("Button.onClick did not resolve")
	}
	if sc.ResolveMethod("Widget", "onClick", 1) != nil {
		t.Fatal("undeclared Widget resolved before it exists")
	}
	if !sc.SubtypeOf("Button", "Clickable") || sc.SubtypeOf("Widget", "Clickable") {
		t.Fatal("baseline subtype answers wrong")
	}

	// Grow the program: Widget implements Clickable with its own override.
	w := ir.NewClass("Widget", "java.lang.Object")
	w.Interfaces = []string{"Clickable"}
	own := ir.NewMethod("onClick", ir.Void, false)
	own.Params = []*ir.Local{{Name: "v", Type: ir.Ref("java.lang.Object")}}
	if err := w.AddMethod(own); err != nil {
		t.Fatal(err)
	}
	if err := prog.AddClass(w); err != nil {
		t.Fatal(err)
	}
	sc.Refresh()

	if got := sc.ResolveMethod("Widget", "onClick", 1); got != own {
		t.Errorf("after Refresh, ResolveMethod(Widget, onClick) = %v, want the new override", got)
	}
	if !sc.SubtypeOf("Widget", "Clickable") {
		t.Error("after Refresh, Widget is not a Clickable subtype")
	}
	subs := sc.SubtypesOf("Clickable")
	found := false
	for _, s := range subs {
		if s == "Widget" {
			found = true
		}
	}
	if !found {
		t.Errorf("after Refresh, SubtypesOf(Clickable) = %v, missing Widget", subs)
	}
	// Memoization still sound: repeated queries return the same pointer
	// and register as hits.
	before := sc.Stats()
	if sc.ResolveMethod("Widget", "onClick", 1) != own {
		t.Error("repeated resolution changed its answer")
	}
	if after := sc.Stats(); after.MethodHits != before.MethodHits+1 {
		t.Errorf("repeated resolution was not a cache hit (%d -> %d)", before.MethodHits, after.MethodHits)
	}
}

// TestSceneMatchesProgramOnRandomHierarchies cross-checks every hierarchy
// query against the uncached program on randomly generated class DAGs
// with interfaces, dangling supertype names, and scattered members.
func TestSceneMatchesProgramOnRandomHierarchies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		prog := ir.NewProgram()
		n := 3 + rng.Intn(12)
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("C%d", i)
		}
		// Classes only reference higher-numbered names (a DAG) plus the
		// occasional dangling name that is never declared.
		for i := 0; i < n; i++ {
			super := ""
			switch pick := rng.Intn(4); {
			case pick == 0 && i+1 < n:
				super = names[i+1+rng.Intn(n-i-1)]
			case pick == 1:
				super = fmt.Sprintf("dangling.D%d", rng.Intn(3))
			}
			c := ir.NewClass(names[i], super)
			c.Interface = rng.Intn(3) == 0
			for k := 0; k < rng.Intn(3) && i+1 < n; k++ {
				c.Interfaces = append(c.Interfaces, names[i+1+rng.Intn(n-i-1)])
			}
			if rng.Intn(2) == 0 {
				m := ir.NewMethod(fmt.Sprintf("m%d", rng.Intn(3)), ir.Void, false)
				if err := c.AddMethod(m); err != nil {
					t.Fatal(err)
				}
			}
			if rng.Intn(2) == 0 {
				if _, err := c.AddField(fmt.Sprintf("f%d", rng.Intn(3)), ir.Int, false); err != nil {
					t.Fatal(err)
				}
			}
			if err := prog.AddClass(c); err != nil {
				t.Fatal(err)
			}
		}
		sc := scene.New(prog)
		queries := append(append([]string{}, names...), "dangling.D0", "dangling.D1", "nowhere.X")
		for _, sub := range queries {
			for _, super := range queries {
				if got, want := sc.SubtypeOf(sub, super), prog.SubtypeOf(sub, super); got != want {
					t.Fatalf("trial %d: SubtypeOf(%s, %s): scene %v, program %v", trial, sub, super, got, want)
				}
			}
			if got, want := fmt.Sprint(sc.SubtypesOf(sub)), fmt.Sprint(prog.SubtypesOf(sub)); got != want {
				t.Fatalf("trial %d: SubtypesOf(%s): scene %v, program %v", trial, sub, got, want)
			}
			for k := 0; k < 3; k++ {
				mn := fmt.Sprintf("m%d", k)
				if got, want := sc.ResolveMethod(sub, mn, 0), prog.ResolveMethod(sub, mn, 0); got != want {
					t.Fatalf("trial %d: ResolveMethod(%s, %s): scene %v, program %v", trial, sub, mn, got, want)
				}
				fn := fmt.Sprintf("f%d", k)
				if got, want := sc.ResolveField(sub, fn), prog.ResolveField(sub, fn); got != want {
					t.Fatalf("trial %d: ResolveField(%s, %s): scene %v, program %v", trial, sub, fn, got, want)
				}
			}
		}
	}
}
