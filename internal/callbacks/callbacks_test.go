package callbacks

import (
	"context"
	"testing"

	"flowdroid/internal/apk"
	"flowdroid/internal/testapps"
)

func TestXMLCallbacks(t *testing.T) {
	app, err := apk.LoadFiles(testapps.LeakageApp)
	if err != nil {
		t.Fatal(err)
	}
	res := Discover(context.Background(), app)
	cbs := res.CallbacksOf("com.example.leakage.LeakageApp")
	if len(cbs) != 1 {
		t.Fatalf("callbacks = %v, want just sendMessage", cbs)
	}
	if cbs[0].Name != "sendMessage" {
		t.Errorf("callback = %s", cbs[0])
	}
	// Disabled components are not analyzed at all.
	if res.CallbacksOf("com.example.leakage.DisabledActivity") != nil {
		t.Error("disabled activity should have no callback entry")
	}
	if res.Total() != 1 {
		t.Errorf("total = %d", res.Total())
	}
}

func TestImperativeCallbacks(t *testing.T) {
	app, err := apk.LoadFiles(testapps.LocationApp)
	if err != nil {
		t.Fatal(err)
	}
	res := Discover(context.Background(), app)
	cbs := res.CallbacksOf("com.example.loc.LocActivity")
	names := map[string]bool{}
	for _, m := range cbs {
		names[m.Name] = true
	}
	// The registration gives all four LocationListener callbacks, plus
	// the XML click handler.
	for _, want := range []string{"onLocationChanged", "onProviderEnabled",
		"onProviderDisabled", "onStatusChanged", "leakIt"} {
		if !names[want] {
			t.Errorf("missing callback %s (have %v)", want, cbs)
		}
	}
	if len(cbs) != 5 {
		t.Errorf("callbacks = %d, want 5 (%v)", len(cbs), cbs)
	}
}

const overrideApp = `
class com.x.Main extends android.app.Activity {
  field secret: java.lang.String
  method onCreate(b: android.os.Bundle): void {
    return
  }
  // Overridden framework method: called by the system without explicit
  // registration (DroidBench MethodOverride1 pattern).
  method onLowMemory(): void {
    s = this.secret
    android.util.Log.i("t", s)
    return
  }
  // Plain helper: not a callback.
  method helper(): void {
    return
  }
}
`

func TestOverriddenFrameworkMethods(t *testing.T) {
	app, err := apk.LoadFiles(map[string]string{
		"AndroidManifest.xml": `<manifest package="com.x"><application>
			<activity android:name=".Main"/></application></manifest>`,
		"c.ir": overrideApp,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Discover(context.Background(), app)
	cbs := res.CallbacksOf("com.x.Main")
	if len(cbs) != 1 || cbs[0].Name != "onLowMemory" {
		t.Errorf("callbacks = %v, want onLowMemory only", cbs)
	}
}

const chainedApp = `
class com.x.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    v = this.findViewById(@id/b1)
    l1 = new com.x.First()
    v.setOnClickListener(l1)
  }
}
// The first handler registers a second one: discovery must iterate.
class com.x.First implements android.view.View$OnClickListener {
  method init(): void {
    return
  }
  method onClick(v: android.view.View): void {
    l2 = new com.x.Second()
    v.setOnClickListener(l2)
  }
}
class com.x.Second implements android.view.View$OnClickListener {
  method init(): void {
    return
  }
  method onClick(v: android.view.View): void {
    return
  }
}
`

func TestChainedRegistrationFixedPoint(t *testing.T) {
	app, err := apk.LoadFiles(map[string]string{
		"AndroidManifest.xml": `<manifest package="com.x"><application>
			<activity android:name=".Main"/></application></manifest>`,
		"c.ir": chainedApp,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Discover(context.Background(), app)
	cbs := res.CallbacksOf("com.x.Main")
	classes := map[string]bool{}
	for _, m := range cbs {
		classes[m.Class.Name] = true
	}
	if !classes["com.x.First"] {
		t.Error("First.onClick not discovered")
	}
	if !classes["com.x.Second"] {
		t.Error("Second.onClick not discovered (fixed point failed)")
	}
}
