// Package callbacks discovers the callback handlers of each application
// component, implementing the incremental algorithm of the paper: starting
// from the component's lifecycle methods, a call graph is built and
// scanned for calls to framework methods that take a well-known callback
// interface as a formal parameter; newly discovered handlers extend the
// graph and the scan repeats until a fixed point is reached. Handlers
// registered declaratively in layout XML (android:onClick) and overridden
// framework methods are added as well.
//
// The result maps each component to exactly the callbacks it registers —
// the precise association that lets the lifecycle model invoke a button
// handler only within its own activity's resumed phase.
package callbacks

import (
	"context"
	"sort"

	"flowdroid/internal/apk"
	"flowdroid/internal/callgraph"
	"flowdroid/internal/framework"
	"flowdroid/internal/ir"
)

// Origin describes how a callback was registered.
type Origin int

const (
	// XMLOrigin marks handlers declared in layout XML (android:onClick).
	XMLOrigin Origin = iota
	// ImperativeOrigin marks handlers registered through framework calls
	// (setOnClickListener, requestLocationUpdates, ...).
	ImperativeOrigin
	// OverrideOrigin marks overridden framework methods.
	OverrideOrigin
)

// Result maps component class names to their discovered callback methods.
type Result struct {
	// ByComponent maps a component class to its callbacks, sorted.
	ByComponent map[string][]*ir.Method
	// Origins records how each callback was discovered.
	Origins map[*ir.Method]Origin
}

// CallbacksOf returns the callbacks of a component class.
func (r *Result) CallbacksOf(class string) []*ir.Method { return r.ByComponent[class] }

// EntryPoints returns the methods the dummy main would invoke for the
// component: its implemented lifecycle methods plus its discovered
// callbacks. This is the set the demand-driven pipeline tests against the
// reachability cone — a component none of whose entry points can reach a
// queried sink (or escape through the static heap) needs no dummy-main
// modeling for that query.
func (r *Result) EntryPoints(h ir.Hierarchy, comp *apk.Component) []*ir.Method {
	var out []*ir.Method
	for _, lm := range framework.LifecycleOf(comp.Kind) {
		if m := h.ResolveMethod(comp.Class, lm.Name, lm.NArgs); m != nil && !m.Abstract() {
			out = append(out, m)
		}
	}
	return append(out, r.CallbacksOf(comp.Class)...)
}

// Total returns the number of (component, callback) pairs.
func (r *Result) Total() int {
	n := 0
	for _, cbs := range r.ByComponent {
		n += len(cbs)
	}
	return n
}

// Discover runs callback discovery for every enabled component of the
// app, resolving against the app's raw program. A cancelled context cuts
// the fixed-point iteration short; the result then covers the components
// processed so far.
func Discover(ctx context.Context, app *apk.App) *Result {
	return DiscoverWith(ctx, app, app.Program)
}

// DiscoverWith runs callback discovery resolving hierarchy and member
// queries against h — pass a scene.Scene to reuse its precomputed
// subtype sets and shared resolver across the per-component call graphs
// the fixed point rebuilds.
func DiscoverWith(ctx context.Context, app *apk.App, h ir.Hierarchy) *Result {
	res := &Result{
		ByComponent: make(map[string][]*ir.Method),
		Origins:     make(map[*ir.Method]Origin),
	}
	for _, comp := range app.Components() {
		if ctx.Err() != nil {
			break
		}
		cbs := discoverComponent(ctx, app, h, comp, res.Origins)
		res.ByComponent[comp.Class] = cbs
	}
	return res
}

func discoverComponent(ctx context.Context, app *apk.App, prog ir.Hierarchy, comp *apk.Component, origins map[*ir.Method]Origin) []*ir.Method {
	cls := prog.Class(comp.Class)
	if cls == nil {
		return nil
	}
	found := make(map[*ir.Method]bool)

	// Entry points of the component's own call graph: the lifecycle
	// methods it implements (including those inherited from app-defined
	// superclasses, but not bare framework stubs).
	var entries []*ir.Method
	for _, lm := range framework.LifecycleOf(comp.Kind) {
		if m := prog.ResolveMethod(comp.Class, lm.Name, lm.NArgs); m != nil && !m.Abstract() {
			entries = append(entries, m)
		}
	}

	// Overridden framework methods ("undocumented callbacks").
	for _, m := range cls.Methods() {
		if m.Abstract() {
			continue
		}
		if framework.IsOverridableMethod(m.Name, len(m.Params)) &&
			overridesFramework(prog, cls, m) {
			found[m] = true
			origins[m] = OverrideOrigin
		}
	}

	// XML-declared click handlers of the layouts this component inflates.
	for _, layout := range inflatedLayouts(ctx, app, prog, entries) {
		for _, handler := range layout.ClickHandlers() {
			if m := cls.Method(handler, 1); m != nil && !m.Abstract() {
				found[m] = true
				origins[m] = XMLOrigin
			}
		}
	}

	// Fixed point: scan the component call graph for imperative
	// registrations; discovered handlers become entry points themselves
	// (handlers may register further callbacks).
	for ctx.Err() == nil {
		roots := append([]*ir.Method(nil), entries...)
		for m := range found {
			roots = append(roots, m)
		}
		g := callgraph.BuildCHA(ctx, prog, roots...)
		added := false
		for _, m := range g.Reachable() {
			for _, s := range m.Body() {
				for _, cb := range registrationsAt(prog, s) {
					if !found[cb] {
						found[cb] = true
						origins[cb] = ImperativeOrigin
						added = true
					}
				}
			}
		}
		if !added {
			break
		}
	}

	out := make([]*ir.Method, 0, len(found))
	for m := range found {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// overridesFramework reports whether m overrides a method declared on a
// framework (synthetic/stub) superclass.
func overridesFramework(prog ir.Hierarchy, cls *ir.Class, m *ir.Method) bool {
	for super := cls.Super; super != ""; {
		sc := prog.Class(super)
		if sc == nil {
			return false
		}
		if decl := sc.Method(m.Name, len(m.Params)); decl != nil {
			return decl.Abstract()
		}
		super = sc.Super
	}
	return false
}

// inflatedLayouts returns the layouts referenced by setContentView calls
// with constant ids in the given methods (and only those — a button click
// handler is only valid for the activity that hosts the button).
func inflatedLayouts(ctx context.Context, app *apk.App, prog ir.Hierarchy, entries []*ir.Method) []*apk.Layout {
	var out []*apk.Layout
	seen := make(map[string]bool)
	g := callgraph.BuildCHA(ctx, prog, entries...)
	for _, m := range g.Reachable() {
		for _, s := range m.Body() {
			call := ir.CallOf(s)
			if call == nil || call.Ref.Name != "setContentView" || len(call.Args) != 1 {
				continue
			}
			id, ok := apk.ConstID(call.Args[0])
			if !ok {
				continue
			}
			name, ok := app.Res.NameOf(id)
			if !ok {
				continue
			}
			const prefix = "layout/"
			if len(name) > len(prefix) && name[:len(prefix)] == prefix {
				ln := name[len(prefix):]
				if l := app.Layouts[ln]; l != nil && !seen[ln] {
					seen[ln] = true
					out = append(out, l)
				}
			}
		}
	}
	return out
}

// registrationsAt inspects a single statement for a call to a framework
// method that takes a callback interface as a formal parameter, and
// returns the callback methods of the actual argument's class.
func registrationsAt(prog ir.Hierarchy, s ir.Stmt) []*ir.Method {
	call := ir.CallOf(s)
	if call == nil {
		return nil
	}
	target := resolveDeclared(prog, call)
	if target == nil || !target.Abstract() {
		// Only framework stubs register callbacks with the system; calls
		// into app code are followed by the call graph itself.
		return nil
	}
	var out []*ir.Method
	for i, p := range target.Params {
		if i >= len(call.Args) {
			break
		}
		if !p.Type.IsRef() {
			continue
		}
		sigs, ok := framework.CallbackInterfaces[p.Type.Name]
		if !ok {
			continue
		}
		arg, ok := call.Args[i].(*ir.Local)
		if !ok {
			continue
		}
		for _, implCls := range implementorsOf(prog, arg, p.Type.Name) {
			for _, sig := range sigs {
				if m := prog.ResolveMethod(implCls, sig.Name, sig.NArgs); m != nil && !m.Abstract() {
					out = append(out, m)
				}
			}
		}
	}
	return out
}

// resolveDeclared resolves the invocation's static target from declared
// type information.
func resolveDeclared(prog ir.Hierarchy, call *ir.InvokeExpr) *ir.Method {
	cls := call.Ref.Class
	if call.Kind == ir.VirtualInvoke && call.Base != nil && call.Base.Type.IsRef() {
		cls = call.Base.Type.Name
	}
	if cls == "" {
		return nil
	}
	return prog.ResolveMethod(cls, call.Ref.Name, call.Ref.NArgs)
}

// implementorsOf determines which classes the registered listener argument
// may be: the argument's declared class if it implements the interface,
// otherwise every non-framework implementor of the interface (coarse but
// sound fallback).
func implementorsOf(prog ir.Hierarchy, arg *ir.Local, iface string) []string {
	if arg.Type.IsRef() && prog.SubtypeOf(arg.Type.Name, iface) {
		if c := prog.Class(arg.Type.Name); c != nil && !c.Interface {
			return []string{arg.Type.Name}
		}
	}
	var out []string
	for _, sub := range prog.SubtypesOf(iface) {
		c := prog.Class(sub)
		if c == nil || c.Interface {
			continue
		}
		out = append(out, sub)
	}
	return out
}
