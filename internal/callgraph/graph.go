// Package callgraph builds and represents call graphs over the IR. Two
// builders are provided: a fast class-hierarchy analysis (CHA) used during
// callback discovery, and a points-to-refined builder (in internal/pta,
// the stand-in for Soot's Spark) used for the final graph the taint
// analysis runs on.
package callgraph

import (
	"context"
	"sort"
	"sync"

	"flowdroid/internal/ir"
	"flowdroid/internal/metrics"
)

// Graph is a call graph: a set of entry methods, call edges from call
// statements to target methods, and the derived reachable-method set.
type Graph struct {
	Entries []*ir.Method

	calleesOf map[ir.Stmt][]*ir.Method
	callersOf map[*ir.Method][]ir.Stmt
	reachable []*ir.Method
	reachSet  map[*ir.Method]bool
}

// NewGraph creates an empty graph with the given entry points.
func NewGraph(entries ...*ir.Method) *Graph {
	g := &Graph{
		Entries:   entries,
		calleesOf: make(map[ir.Stmt][]*ir.Method),
		callersOf: make(map[*ir.Method][]ir.Stmt),
		reachSet:  make(map[*ir.Method]bool),
	}
	for _, e := range entries {
		g.markReachable(e)
	}
	return g
}

// AddEdge records that call site s may invoke target. Duplicate edges are
// ignored. The target becomes reachable.
func (g *Graph) AddEdge(s ir.Stmt, target *ir.Method) {
	for _, t := range g.calleesOf[s] {
		if t == target {
			return
		}
	}
	g.calleesOf[s] = append(g.calleesOf[s], target)
	g.callersOf[target] = append(g.callersOf[target], s)
	g.markReachable(target)
}

func (g *Graph) markReachable(m *ir.Method) {
	if !g.reachSet[m] {
		g.reachSet[m] = true
		g.reachable = append(g.reachable, m)
	}
}

// CalleesOf returns the possible targets of the call statement s.
func (g *Graph) CalleesOf(s ir.Stmt) []*ir.Method { return g.calleesOf[s] }

// CallersOf returns the call statements that may invoke m.
func (g *Graph) CallersOf(m *ir.Method) []ir.Stmt { return g.callersOf[m] }

// Reachable returns all reachable methods in discovery order.
func (g *Graph) Reachable() []*ir.Method { return g.reachable }

// IsReachable reports whether m is reachable from the entries.
func (g *Graph) IsReachable(m *ir.Method) bool { return g.reachSet[m] }

// exportMetrics publishes the graph's size gauges when the context
// carries a recorder. Both builders (CHA here, the points-to builder in
// internal/pta via the pipeline) converge on the same gauge names; the
// values are structural facts of the program and configuration, hence
// deterministic.
func (g *Graph) exportMetrics(ctx context.Context) {
	rec := metrics.From(ctx)
	if rec == nil {
		return
	}
	rec.Gauge("callgraph.edges", metrics.Deterministic).Set(int64(g.NumEdges()))
	rec.Gauge("callgraph.reachable", metrics.Deterministic).Set(int64(len(g.Reachable())))
}

// NumEdges returns the total number of call edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, ts := range g.calleesOf {
		n += len(ts)
	}
	return n
}

// ReachesTransitively reports whether any method of the call site s's
// callee subtree is the method m, i.e. whether invoking s can transitively
// execute m. The taint analysis uses this to decide whether a call site
// can activate an inactive alias taint (activation statements represent
// call trees).
func (g *Graph) ReachesTransitively(s ir.Stmt, m *ir.Method) bool {
	seen := make(map[*ir.Method]bool)
	var stack []*ir.Method
	for _, t := range g.calleesOf[s] {
		if !seen[t] {
			seen[t] = true
			stack = append(stack, t)
		}
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == m {
			return true
		}
		for _, site := range callsIn(cur) {
			for _, t := range g.calleesOf[site] {
				if !seen[t] {
					seen[t] = true
					stack = append(stack, t)
				}
			}
		}
	}
	return false
}

func callsIn(m *ir.Method) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range m.Body() {
		if ir.IsCall(s) {
			out = append(out, s)
		}
	}
	return out
}

// Resolver resolves the possible runtime targets of invocation
// expressions against a program model using declared types and the class
// hierarchy (CHA). The PTA builder refines virtual calls; everything else
// shares this logic. Resolution is memoized per declared (class, name,
// arity) site, so a resolver is cheapest when long-lived — the scene
// layer keeps one per program and hands it to every phase.
type Resolver struct {
	h ir.Hierarchy
	// nameIndex maps (name, nargs) to all concrete declarations, for the
	// fallback when no declared type is available.
	nameIndex map[nameKey][]*ir.Method

	mu        sync.Mutex
	virtCache map[virtKey][]*ir.Method
}

type nameKey struct {
	name  string
	nargs int
}

// virtKey identifies a virtual dispatch question: the declared receiver
// class plus the invoked signature. Every call site with the same key has
// the same CHA target set.
type virtKey struct {
	class string
	name  string
	nargs int
}

// NewResolver builds a resolver (and its name index) over a program
// model. Passing a cached hierarchy (scene.Scene) makes the subtype and
// member lookups O(1); passing *ir.Program preserves the historical
// walk-per-query behaviour.
func NewResolver(h ir.Hierarchy) *Resolver {
	r := &Resolver{
		h:         h,
		nameIndex: make(map[nameKey][]*ir.Method),
		virtCache: make(map[virtKey][]*ir.Method),
	}
	for _, c := range h.Classes() {
		for _, m := range c.Methods() {
			k := nameKey{m.Name, len(m.Params)}
			r.nameIndex[k] = append(r.nameIndex[k], m)
		}
	}
	return r
}

// ResolverProvider is implemented by program models that keep a shared,
// long-lived resolver (the scene layer). ResolverFor adopts it so the
// name index and dispatch cache are built once per program instead of
// once per call-graph construction.
type ResolverProvider interface {
	Resolver() *Resolver
}

// ResolverFor returns h's shared resolver when it provides one, and a
// fresh resolver otherwise.
func ResolverFor(h ir.Hierarchy) *Resolver {
	if rp, ok := h.(ResolverProvider); ok {
		if r := rp.Resolver(); r != nil {
			return r
		}
	}
	return NewResolver(h)
}

// StaticTargets resolves non-virtual calls (static and special invokes)
// and returns nil for virtual ones.
func (r *Resolver) StaticTargets(e *ir.InvokeExpr) []*ir.Method {
	switch e.Kind {
	case ir.StaticInvoke, ir.SpecialInvoke:
		if m := r.h.ResolveMethod(e.Ref.Class, e.Ref.Name, e.Ref.NArgs); m != nil {
			return []*ir.Method{m}
		}
	}
	return nil
}

// VirtualTargets resolves a virtual call with CHA: every subtype of the
// declared receiver class contributes the method it would dispatch to. If
// the declared class is unknown or resolves nothing, it falls back to all
// same-name declarations program-wide. Results are cached per declared
// site and returned in deterministic (sorted) order; callers must not
// mutate the returned slice.
func (r *Resolver) VirtualTargets(e *ir.InvokeExpr) []*ir.Method {
	declared := e.Ref.Class
	if e.Base != nil && e.Base.Type.IsRef() {
		declared = e.Base.Type.Name
	}
	k := virtKey{declared, e.Ref.Name, e.Ref.NArgs}
	r.mu.Lock()
	cached, ok := r.virtCache[k]
	r.mu.Unlock()
	if ok {
		return cached
	}
	targets := make(map[*ir.Method]bool)
	if declared != "" && r.h.Class(declared) != nil {
		for _, sub := range r.h.SubtypesOf(declared) {
			if c := r.h.Class(sub); c != nil && c.Interface {
				continue
			}
			if m := r.h.ResolveMethod(sub, e.Ref.Name, e.Ref.NArgs); m != nil {
				targets[m] = true
			}
		}
	}
	if len(targets) == 0 {
		for _, m := range r.nameIndex[nameKey{e.Ref.Name, e.Ref.NArgs}] {
			targets[m] = true
		}
	}
	out := make([]*ir.Method, 0, len(targets))
	for m := range targets {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	r.mu.Lock()
	r.virtCache[k] = out
	r.mu.Unlock()
	return out
}

// TargetsOf resolves all possible targets of an invocation with CHA.
func (r *Resolver) TargetsOf(e *ir.InvokeExpr) []*ir.Method {
	if ts := r.StaticTargets(e); ts != nil {
		return ts
	}
	if e.Kind == ir.VirtualInvoke {
		return r.VirtualTargets(e)
	}
	return nil
}

// DispatchOn resolves a virtual call for a single concrete receiver type,
// as the points-to builder does per allocation site.
func (r *Resolver) DispatchOn(runtimeClass string, e *ir.InvokeExpr) *ir.Method {
	return r.h.ResolveMethod(runtimeClass, e.Ref.Name, e.Ref.NArgs)
}

// BuildCHA constructs a call graph by class-hierarchy analysis from the
// given entry points, exploring only methods with bodies. A cancelled
// context stops the exploration early and yields the partial graph built
// so far. When h carries a shared resolver (scene.Scene), it is reused
// instead of re-indexing the program.
func BuildCHA(ctx context.Context, h ir.Hierarchy, entries ...*ir.Method) *Graph {
	return BuildCHAWithExtra(ctx, h, nil, entries...)
}

// BuildCHAWithExtra is BuildCHA with additional resolved call edges —
// site statement to target method — merged into the exploration. The
// constant-propagation pass supplies resolved reflective sites this
// way: each extra target is a synthesized bridge method that becomes
// reachable (and explorable) exactly like a statically resolved callee.
func BuildCHAWithExtra(ctx context.Context, h ir.Hierarchy, extra map[ir.Stmt][]*ir.Method, entries ...*ir.Method) *Graph {
	g := NewGraph(entries...)
	defer g.exportMetrics(ctx)
	r := ResolverFor(h)
	seen := make(map[*ir.Method]bool)
	work := append([]*ir.Method(nil), entries...)
	steps := 0
	for len(work) > 0 {
		steps++
		if steps%256 == 0 && ctx.Err() != nil {
			return g
		}
		m := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[m] {
			continue
		}
		seen[m] = true
		for _, s := range m.Body() {
			call := ir.CallOf(s)
			if call == nil {
				continue
			}
			for _, t := range r.TargetsOf(call) {
				g.AddEdge(s, t)
				if !seen[t] && !t.Abstract() {
					work = append(work, t)
				}
			}
			for _, t := range extra[s] {
				g.AddEdge(s, t)
				if !seen[t] && !t.Abstract() {
					work = append(work, t)
				}
			}
		}
	}
	return g
}
