package callgraph

import (
	"context"
	"testing"

	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
)

const hierarchySrc = `
class Animal {
  method speak(): java.lang.String {
    r = "..."
    return r
  }
}
class Dog extends Animal {
  method speak(): java.lang.String {
    r = "woof"
    return r
  }
}
class Puppy extends Dog {
}
class Cat extends Animal {
  method speak(): java.lang.String {
    r = "meow"
    return r
  }
}
class Main {
  static method viaAnimal(): void {
    local a: Animal
    a = new Dog
    s = a.speak()
    return
  }
  static method viaDog(): void {
    local d: Dog
    d = new Puppy
    s = d.speak()
    return
  }
  static method direct(): void {
    s = Main.helper()
    return
  }
  static method helper(): java.lang.String {
    r = "h"
    return r
  }
}
`

func parse(t *testing.T) *ir.Program {
	t.Helper()
	prog, err := irtext.ParseProgram(hierarchySrc, "h.ir")
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func callIn(m *ir.Method) ir.Stmt {
	for _, s := range m.Body() {
		if ir.IsCall(s) {
			return s
		}
	}
	return nil
}

func TestCHADispatchOverApex(t *testing.T) {
	prog := parse(t)
	main := prog.Class("Main").Method("viaAnimal", 0)
	g := BuildCHA(context.Background(), prog, main)
	targets := g.CalleesOf(callIn(main))
	names := map[string]bool{}
	for _, m := range targets {
		names[m.Class.Name] = true
	}
	// CHA over declared type Animal: all three implementations.
	for _, want := range []string{"Animal", "Dog", "Cat"} {
		if !names[want] {
			t.Errorf("CHA should include %s.speak, got %v", want, targets)
		}
	}
}

func TestCHAInheritedDispatch(t *testing.T) {
	prog := parse(t)
	main := prog.Class("Main").Method("viaDog", 0)
	g := BuildCHA(context.Background(), prog, main)
	targets := g.CalleesOf(callIn(main))
	// Puppy inherits Dog.speak; the subtree of Dog excludes Cat and the
	// Animal root's version is not reachable through a Dog-typed
	// receiver... except through resolution for Dog itself, which is
	// Dog.speak. Exactly one target.
	if len(targets) != 1 || targets[0].Class.Name != "Dog" {
		t.Errorf("targets = %v, want Dog.speak only", targets)
	}
}

func TestStaticResolution(t *testing.T) {
	prog := parse(t)
	main := prog.Class("Main").Method("direct", 0)
	r := NewResolver(prog)
	call := ir.CallOf(callIn(main))
	ts := r.StaticTargets(call)
	if len(ts) != 1 || ts[0].Name != "helper" {
		t.Errorf("static targets = %v", ts)
	}
	if r.DispatchOn("Puppy", &ir.InvokeExpr{Ref: ir.MethodRef{Name: "speak", NArgs: 0}}).Class.Name != "Dog" {
		t.Error("DispatchOn should resolve through the superclass chain")
	}
}

func TestGraphBookkeeping(t *testing.T) {
	prog := parse(t)
	main := prog.Class("Main").Method("viaAnimal", 0)
	g := BuildCHA(context.Background(), prog, main)
	if !g.IsReachable(main) {
		t.Error("entry must be reachable")
	}
	dog := prog.Class("Dog").Method("speak", 0)
	if !g.IsReachable(dog) {
		t.Error("dispatched target must be reachable")
	}
	helper := prog.Class("Main").Method("helper", 0)
	if g.IsReachable(helper) {
		t.Error("helper is not called from viaAnimal")
	}
	if g.NumEdges() == 0 {
		t.Error("no edges recorded")
	}
	site := callIn(main)
	for _, m := range g.CalleesOf(site) {
		found := false
		for _, c := range g.CallersOf(m) {
			if c == site {
				found = true
			}
		}
		if !found {
			t.Errorf("caller/callee maps inconsistent for %v", m)
		}
	}
	// Duplicate edges are ignored.
	before := g.NumEdges()
	g.AddEdge(site, dog)
	if g.NumEdges() != before {
		t.Error("duplicate edge changed the graph")
	}
}

func TestReachesTransitivelySelf(t *testing.T) {
	prog := parse(t)
	main := prog.Class("Main").Method("direct", 0)
	g := BuildCHA(context.Background(), prog, main)
	site := callIn(main)
	helper := prog.Class("Main").Method("helper", 0)
	if !g.ReachesTransitively(site, helper) {
		t.Error("direct call should reach its target")
	}
	if g.ReachesTransitively(site, main) {
		t.Error("non-recursive call must not reach the caller")
	}
}
