module flowdroid

go 1.22
