package flowdroid_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"flowdroid/internal/appgen"
	"flowdroid/internal/core"
	"flowdroid/internal/sourcesink"
)

// BenchmarkQueryTaint quantifies the demand-driven query mode: the same
// corpus analyzed whole-program and under a single-sink query, with the
// equivalence contract asserted in-line (the query report must equal the
// filtered whole-program report) and the work saved persisted as
// BENCH_query.json (schema-checked by scripts/checkbench in ci.sh). The
// propagation counts are the honest currency here — wall time on a smoke
// run is noise, novel path-edge insertions are deterministic.

// benchQueryApps is the corpus size: the malware profile leaks into
// several sink kinds per app, so a single-sink query has real work to
// skip.
const benchQueryApps = 8

// benchQuerySink is the queried sink label.
const benchQuerySink = "sms"

type benchQueryRun struct {
	WallMS            float64 `json:"wall_ms"`
	Propagations      int     `json:"propagations"`
	Leaks             int     `json:"leaks"`
	ConeMethods       int     `json:"cone_methods"`
	SkippedComponents int     `json:"skipped_components"`
}

type benchQueryReport struct {
	Bench      string        `json:"bench"`
	Profile    string        `json:"profile"`
	Apps       int           `json:"apps"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Query      []string      `json:"query"`
	Whole      benchQueryRun `json:"whole"`
	QueryRun   benchQueryRun `json:"query_run"`
	// PropagationReduction is 1 - query/whole propagations: the fraction
	// of solver work the query avoided.
	PropagationReduction float64 `json:"propagation_reduction"`
	Note                 string  `json:"note"`
}

func BenchmarkQueryTaint(b *testing.B) {
	apps := appgen.GenerateCorpus(appgen.Malware, benchQueryApps, 1)
	query := core.Query{Sinks: []string{benchQuerySink}}

	// analyzeAll runs the corpus under one query (empty = whole-program),
	// returning aggregate counters and the canonical per-app reports —
	// filtered to the bench query on the whole-program side, so the two
	// report streams must be byte-identical.
	analyzeAll := func(q core.Query) (benchQueryRun, []byte) {
		var agg benchQueryRun
		var reports bytes.Buffer
		start := time.Now()
		for _, app := range apps {
			opts := core.DefaultOptions()
			opts.Query = q
			res, err := core.AnalyzeFiles(context.Background(), app.Files, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Status != core.Complete {
				b.Fatalf("query=%v: app %s status %v", q.Sinks, app.Name, res.Status)
			}
			agg.Propagations += res.Counters.Propagations
			agg.ConeMethods += res.Counters.ConeMethods
			agg.SkippedComponents += res.Counters.SkippedComponents
			taintRes := res.Taint
			if q.IsAll() {
				taintRes = taintRes.FilterSinks(func(s sourcesink.Sink) bool {
					return s.MatchesSelector(benchQuerySink)
				})
			}
			agg.Leaks += len(taintRes.DistinctSourceSinkPairs())
			js, err := taintRes.CanonicalJSON()
			if err != nil {
				b.Fatal(err)
			}
			reports.Write(js)
		}
		agg.WallMS = float64(time.Since(start).Microseconds()) / 1000
		return agg, reports.Bytes()
	}

	var whole, queried benchQueryRun
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wholeRep, queryRep []byte
		whole, wholeRep = analyzeAll(core.Query{})
		queried, queryRep = analyzeAll(query)
		if !bytes.Equal(wholeRep, queryRep) {
			b.Fatalf("query-mode reports differ from filtered whole-program reports")
		}
		if queried.Propagations >= whole.Propagations {
			b.Fatalf("query mode did %d propagations, whole-program %d: the cone pruned nothing",
				queried.Propagations, whole.Propagations)
		}
	}
	b.StopTimer()

	reduction := 1 - float64(queried.Propagations)/float64(whole.Propagations)
	b.ReportMetric(100*reduction, "propagation-reduction%")
	b.ReportMetric(float64(queried.Leaks), "leaks")

	rep := benchQueryReport{
		Bench:                "BenchmarkQueryTaint",
		Profile:              appgen.Malware.Name,
		Apps:                 benchQueryApps,
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		NumCPU:               runtime.NumCPU(),
		Query:                query.Sinks,
		Whole:                whole,
		QueryRun:             queried,
		PropagationReduction: reduction,
		Note: fmt.Sprintf(
			"single-sink query %q avoided %.0f%% of the whole-program propagations (%d vs %d) over %d apps; reports verified byte-identical to the filtered whole-program reports",
			benchQuerySink, 100*reduction, queried.Propagations, whole.Propagations, benchQueryApps),
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_query.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
