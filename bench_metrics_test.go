package flowdroid_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"flowdroid/internal/appgen"
	"flowdroid/internal/core"
	"flowdroid/internal/metrics"
)

// BenchmarkSmokeMetrics quantifies the observability layer's cost: the
// same corpus is analyzed once with no recorder in the context — the nil
// fast path every run without -metrics/-trace takes — and once with a
// full recorder plus a JSONL trace sink attached. The result persists as
// BENCH_metrics.json (schema-checked by scripts/checkbench in ci.sh), so
// the "disabled means free" claim is re-measured on every CI run instead
// of being asserted once and drifting.

// benchMetricsApps is the corpus size; small enough for -benchtime=1x
// smoke runs, large enough that the instrumented hot loops dominate.
const benchMetricsApps = 4

type benchMetricsReport struct {
	Bench      string `json:"bench"`
	Profile    string `json:"profile"`
	Apps       int    `json:"apps"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// OffWallMS is the corpus wall time with no recorder (nil fast path);
	// OnWallMS the same corpus with a recorder and trace sink attached.
	OffWallMS float64 `json:"off_wall_ms"`
	OnWallMS  float64 `json:"on_wall_ms"`
	// OverheadRatio is on/off: 1.0 means instrumentation was free.
	OverheadRatio float64 `json:"overhead_ratio"`
	// DeterministicKeys counts the schedule-independent counters the
	// instrumented run produced; zero means the wiring came apart.
	DeterministicKeys int `json:"deterministic_keys"`
	// TraceEvents counts emitted JSONL lines (B/E pairs, hence even).
	TraceEvents int    `json:"trace_events"`
	Note        string `json:"note"`
}

// countingWriter counts trace lines without retaining them.
type countingWriter struct{ lines int }

func (w *countingWriter) Write(p []byte) (int, error) {
	for _, b := range p {
		if b == '\n' {
			w.lines++
		}
	}
	return len(p), nil
}

func BenchmarkSmokeMetrics(b *testing.B) {
	apps := appgen.GenerateCorpus(appgen.Malware, benchMetricsApps, 7)

	analyzeAll := func(ctx context.Context) time.Duration {
		opts := core.DefaultOptions()
		start := time.Now()
		for _, app := range apps {
			res, err := core.AnalyzeFiles(ctx, app.Files, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Status != core.Complete {
				b.Fatalf("app %s status %v", app.Name, res.Status)
			}
		}
		return time.Since(start)
	}

	// One unmeasured pass warms whatever the runtime warms, so the
	// off/on comparison is not a cold-start artifact.
	analyzeAll(context.Background())

	var offWall, onWall time.Duration
	var keys, events int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offWall = analyzeAll(context.Background())

		rec := metrics.New()
		sink := &countingWriter{}
		rec.SetTrace(metrics.NewTrace(sink))
		onWall = analyzeAll(metrics.Into(context.Background(), rec))

		snap := rec.Snapshot()
		keys, events = len(snap.Deterministic), sink.lines
		for _, want := range []string{"pipeline.taint.runs", "pta.propagations", "taint.propagations"} {
			if _, ok := snap.Deterministic[want]; !ok {
				b.Fatalf("instrumented run is missing counter %q; snapshot keys: %v", want, snap.Deterministic)
			}
		}
		if events == 0 || events%2 != 0 {
			b.Fatalf("trace emitted %d events, want a positive even count (B/E pairs)", events)
		}
	}
	b.StopTimer()

	ratio := 0.0
	if offWall > 0 {
		ratio = float64(onWall) / float64(offWall)
	}
	b.ReportMetric(ratio, "overhead")

	rep := benchMetricsReport{
		Bench:             "BenchmarkSmokeMetrics",
		Profile:           "malware",
		Apps:              benchMetricsApps,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		NumCPU:            runtime.NumCPU(),
		OffWallMS:         float64(offWall.Microseconds()) / 1000,
		OnWallMS:          float64(onWall.Microseconds()) / 1000,
		OverheadRatio:     ratio,
		DeterministicKeys: keys,
		TraceEvents:       events,
		Note:              benchMetricsNote(ratio),
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_metrics.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// benchMetricsNote interprets the ratio for readers who don't know the
// host: a single -benchtime=1x sample of a millisecond-scale corpus is
// noisy, so modest wobble in either direction is expected.
func benchMetricsNote(ratio float64) string {
	switch {
	case ratio <= 1.10:
		return fmt.Sprintf("instrumentation overhead %.2fx: within noise of free", ratio)
	case ratio <= 1.5:
		return fmt.Sprintf("instrumentation overhead %.2fx on a one-shot sample; rerun with -benchtime to confirm a real regression", ratio)
	default:
		return fmt.Sprintf("instrumentation overhead %.2fx: investigate — the enabled path should cost a few %% at most", ratio)
	}
}
