# Convenience targets; scripts/ci.sh is the authoritative gate.

.PHONY: all build test race vet fuzz ci

all: ci

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Short fuzz pass over the IR parser (satellite of the resilience work).
fuzz:
	go test -fuzz FuzzParse -fuzztime 30s ./internal/irtext/

ci:
	./scripts/ci.sh
