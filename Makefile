# Convenience targets; scripts/ci.sh is the authoritative gate.

.PHONY: all build test race vet fuzz bench-smoke ci

all: ci

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Short fuzz pass over the IR parser (satellite of the resilience work).
fuzz:
	go test -fuzz FuzzParse -fuzztime 30s ./internal/irtext/

# One-shot micro/meso benchmarks comparing the raw-Program and Scene
# hierarchy substrates (walks/op quantifies the cached-hierarchy win).
bench-smoke:
	go test -bench Smoke -benchtime=1x -run '^$$' .

ci:
	./scripts/ci.sh
