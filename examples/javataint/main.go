// Java taint analysis without Android (the RQ4 use case): FlowDroid's
// engine applied to a plain servlet-style program with hand-written
// source/sink rules, the way the paper evaluates SecuriBench Micro.
//
// The example also shows the two extension points a downstream user
// typically needs: custom source/sink rules in the textual format, and
// additional taint-wrapper shortcut rules for a library the engine should
// not analyze.
//
// Run with: go run ./examples/javataint
package main

import (
	"context"
	"fmt"
	"log"

	"flowdroid/internal/core"
	"flowdroid/internal/taint"
)

const program = `
// A tiny "framework" the engine treats as a black box.
class acme.KeyValueStore {
  method put(k: java.lang.String, v: java.lang.String): void;
  method get(k: java.lang.String): java.lang.String;
}

class acme.Request {
  method body(): java.lang.String;
}
class acme.Response {
  method send(payload: java.lang.String): void;
}

class acme.Handler {
  method init(): void {
    return
  }
  method handle(req: acme.Request, resp: acme.Response): void {
    data = req.body()
    store = new acme.KeyValueStore()
    store.put("session", data)
    out = store.get("session")
    resp.send(out)
    safe = "static response"
    resp.send(safe)
    return
  }
}
class acme.Main {
  static method main(): void {
    h = new acme.Handler()
    local rq: acme.Request
    rq = new acme.Request
    local rs: acme.Response
    rs = new acme.Response
    h.handle(rq, rs)
    return
  }
}
`

// Custom endpoint rules: request bodies are tainted, responses leak.
const rules = `
source <acme.Request: body/0> -> return label request-body
sink <acme.Response: send/1> -> arg0 label response
`

// Shortcut rules teach the engine the key-value store's semantics instead
// of analyzing (absent) library code: putting taints the store, getting
// returns its taint.
const wrapperRules = `
wrap <acme.KeyValueStore: put/2> arg1 -> base
wrap <acme.KeyValueStore: get/1> base -> return
`

func main() {
	prog, err := core.ParseJava(program, "acme.ir")
	if err != nil {
		log.Fatal(err)
	}

	conf := taint.DefaultConfig()
	extra, err := taint.ParseWrapper(wrapperRules)
	if err != nil {
		log.Fatal(err)
	}
	conf.Wrapper = taint.MergeWrappers(conf.Wrapper, extra)

	entry := prog.Class("acme.Main").Method("main", 0)
	res, err := core.AnalyzeJava(context.Background(), prog, rules, conf, entry)
	if err != nil {
		log.Fatal(err)
	}

	leaks := res.DistinctSourceSinkPairs()
	fmt.Printf("%d leak(s):\n", len(leaks))
	for _, l := range leaks {
		fmt.Printf("    %s\n", l)
	}
	fmt.Println("\nthe flow survives the key-value store round trip thanks to the")
	fmt.Println("custom wrapper rules; the constant response is not reported.")
}
