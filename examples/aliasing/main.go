// Aliasing walkthrough: the paper's Listings 2 and 3 run directly against
// the taint engine, demonstrating the two mechanisms that make the
// on-demand alias analysis precise:
//
//  1. Context injection (Listing 2 / Figure 3): the alias found inside
//     taintIt is tainted only under the calling context that passed
//     tainted data, so the second, clean call to the same method does not
//     produce a false positive.
//  2. Activation statements (Listing 3): the alias p2 of p exists before
//     p.f is tainted; the taint on p2.f only "activates" once execution
//     passes the store, so the earlier sink stays clean (where
//     Andromeda-style aliasing would report it).
//
// Run with: go run ./examples/aliasing
package main

import (
	"context"
	"fmt"
	"log"

	"flowdroid/internal/cfg"
	"flowdroid/internal/core"
	"flowdroid/internal/pta"
	"flowdroid/internal/sourcesink"
	"flowdroid/internal/taint"
)

const program = `
class Src {
  static method secret(): java.lang.String;
}
class Snk {
  static method leak(x: java.lang.String): void;
}
class Data {
  field f: java.lang.String
  method init(): void {
    return
  }
}
class Listing2 {
  static method taintIt(in: java.lang.String, out: Data): void {
    x = out
    x.f = in
    t = out.f
    Snk.leak(t)                    // leaks only for the tainted call
  }
  static method main(): void {
    p = new Data()
    p2 = new Data()
    s = Src.secret()
    Listing2.taintIt(s, p)
    t1 = p.f
    Snk.leak(t1)                   // real leak
    pub = "public"
    Listing2.taintIt(pub, p2)
    t2 = p2.f
    Snk.leak(t2)                   // must stay clean
  }
}
class Listing3 {
  static method main(): void {
    p = new Data()
    p2 = p
    t1 = p2.f
    Snk.leak(t1)                   // before the store: clean
    s = Src.secret()
    p.f = s
    t2 = p2.f
    Snk.leak(t2)                   // after the store: leaks
  }
}
`

const rules = `
source <Src: secret/0> -> return label secret
sink <Snk: leak/1> -> arg0 label sink
`

func run(entryClass string, conf taint.Config) *taint.Results {
	prog, err := core.ParseJava(program, "listings.ir")
	if err != nil {
		log.Fatal(err)
	}
	entry := prog.Class(entryClass).Method("main", 0)
	res := pta.Build(context.Background(), prog, entry)
	icfg := cfg.NewICFG(prog, res.Graph)
	mgr, err := sourcesink.Parse(prog, rules)
	if err != nil {
		log.Fatal(err)
	}
	return taint.Analyze(context.Background(), icfg, mgr, conf, entry)
}

func report(title string, r *taint.Results) {
	fmt.Printf("%s\n", title)
	for _, l := range r.DistinctSourceSinkPairs() {
		fmt.Printf("    line %3d: %s\n", l.Sink.Line(), l.Sink)
	}
	if len(r.Leaks) == 0 {
		fmt.Println("    (no leaks)")
	}
	fmt.Println()
}

func main() {
	fmt.Println("=== Listing 2: context injection ===")
	report("FlowDroid (precise): leaks at the callee sink and p.f only —",
		run("Listing2", taint.DefaultConfig()))

	fmt.Println("=== Listing 3: activation statements ===")
	report("FlowDroid (flow-sensitive): only the sink after the store —",
		run("Listing3", taint.DefaultConfig()))

	noAct := taint.DefaultConfig()
	noAct.EnableActivation = false
	report("Andromeda mode (no activation): the early sink becomes a false positive —",
		run("Listing3", noAct))

	noAlias := taint.DefaultConfig()
	noAlias.EnableAliasing = false
	report("No alias analysis at all: the aliased leak is missed —",
		run("Listing3", noAlias))
}
