// Quickstart: analyze the paper's running example (Listing 1) end to end.
//
// The app reads a password field in onRestart, stores it in a User object
// held by the activity, and sends it via SMS from a button callback
// declared in layout XML. Finding the leak requires every headline
// feature at once: the lifecycle model (onRestart runs before the click),
// XML callback wiring, layout-derived password sources, field sensitivity
// (only User.pwd is sensitive, not User.name) and the on-demand alias
// analysis.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"flowdroid/internal/core"
	"flowdroid/internal/testapps"
)

func main() {
	// Analyze an in-memory app package with the paper's default
	// configuration (access-path length 5, full lifecycle, alias
	// analysis with activation statements, taint wrapper on).
	res, err := core.AnalyzeFiles(context.Background(), testapps.LeakageApp, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("app:        %s\n", res.App.Package)
	fmt.Printf("components: %d enabled (disabled ones are filtered)\n", len(res.App.Components()))
	fmt.Printf("callbacks:  %d discovered\n", res.Callbacks.Total())
	fmt.Printf("call graph: %d edges\n\n", res.CallGraph.NumEdges())

	leaks := res.Leaks()
	fmt.Printf("%d leak(s) found:\n\n", len(leaks))
	for i, l := range leaks {
		fmt.Printf("[%d] %s data reaches the %s sink:\n", i+1,
			l.Source().Source.Label, l.SinkSpec.Label)
		fmt.Printf("    source: %s\n", l.Source().Stmt)
		fmt.Printf("    sink:   %s\n", l.Sink)
		fmt.Println("    path:")
		for _, s := range l.Path() {
			fmt.Printf("        %-46s (in %s)\n", s, s.Method())
		}
	}

	// The username flows to the very same sink, but it is not sensitive:
	// field sensitivity keeps User.name and User.pwd apart, so exactly
	// one leak is reported.
	fmt.Println("\nnote: the username reaches the same SMS call but is not reported —")
	fmt.Println("only the password half of the User object is a source.")
}
