// Lifecycle walkthrough: how the dummy main method of Figure 1 is
// constructed, and why it matters.
//
// The example loads the Listing 1 app, shows the discovered callbacks
// with their provenance, prints the generated lifecycle automaton, and
// then demonstrates the consequence of getting it wrong: with a
// lifecycle-unaware entry point the password leak disappears, because
// onRestart is never modeled as running before the button callback.
//
// Run with: go run ./examples/lifecycle
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"flowdroid/internal/apk"
	"flowdroid/internal/callbacks"
	"flowdroid/internal/core"
	"flowdroid/internal/ir"
	"flowdroid/internal/lifecycle"
	"flowdroid/internal/testapps"
)

func main() {
	app, err := apk.LoadFiles(testapps.LeakageApp)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Callback discovery: the sendMessage handler comes from the
	// layout XML, not from any code-level registration.
	cbs := callbacks.Discover(context.Background(), app)
	fmt.Println("discovered callbacks:")
	for _, comp := range app.Components() {
		for _, cb := range cbs.CallbacksOf(comp.Class) {
			fmt.Printf("    %-55s owner: %s\n", cb.String(), comp.Class)
		}
	}

	// 2. The generated dummy main: every lifecycle transition of Figure 1
	// is present, with opaque branches the analysis treats as both-ways.
	entry, err := lifecycle.Generate(app, cbs, lifecycle.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngenerated dummy main (Figure 1):")
	for _, line := range strings.Split(ir.PrintMethod(entry), "\n") {
		fmt.Println("   ", line)
	}

	// 3. Why it matters: the same app under a lifecycle-unaware entry
	// point (onCreate only) loses the leak entirely.
	precise, err := core.AnalyzeFiles(context.Background(), testapps.LeakageApp, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	coarseOpts := core.DefaultOptions()
	coarseOpts.Lifecycle.Mode = lifecycle.CreateOnly
	coarse, err := core.AnalyzeFiles(context.Background(), testapps.LeakageApp, coarseOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nleaks with the full lifecycle model:   %d\n", len(precise.Leaks()))
	fmt.Printf("leaks with a lifecycle-unaware model:  %d\n", len(coarse.Leaks()))
	fmt.Println("\nthe under-approximation silently loses the onRestart -> sendMessage flow.")
}
