package flowdroid_test

import (
	"context"
	"math/rand"
	"testing"

	"flowdroid/internal/apk"
	"flowdroid/internal/appgen"
	"flowdroid/internal/callbacks"
	"flowdroid/internal/callgraph"
	"flowdroid/internal/cfg"
	"flowdroid/internal/core"
	"flowdroid/internal/ir"
	"flowdroid/internal/lifecycle"
	"flowdroid/internal/pta"
	"flowdroid/internal/scene"
	"flowdroid/internal/sourcesink"
	"flowdroid/internal/taint"
)

// The smoke benchmarks quantify the Scene refactor: the same hierarchy
// queries and the same end-to-end corpus analysis, once against the raw
// ir.Program (the pre-Scene substrate, which re-walks the class graph per
// query) and once against the Scene's precomputed sets. Each reports
// "walks/op" — class-graph nodes visited by Program.subtypeOf — so the
// query-avoidance claim is a counted fact, not a timing artifact.
//
// Run via: make bench-smoke   (go test -bench=Smoke -benchtime=1x)

// smokeProgram loads one oversized appgen app and returns its program.
func smokeProgram(b *testing.B) *ir.Program {
	b.Helper()
	gen := appgen.Generate(rand.New(rand.NewSource(7)), appgen.Stress, 0)
	app, err := apk.LoadFiles(gen.Files)
	if err != nil {
		b.Fatal(err)
	}
	return app.Program
}

// virtualCalls collects the virtual invoke expressions of the program.
func virtualCalls(prog *ir.Program) []*ir.InvokeExpr {
	var out []*ir.InvokeExpr
	for _, m := range prog.Methods() {
		for _, s := range m.Body() {
			if call := ir.CallOf(s); call != nil && call.Kind == ir.VirtualInvoke {
				out = append(out, call)
			}
		}
	}
	return out
}

// hierarchyQueries runs the query mix every analysis phase issues —
// pairwise subtype tests, subtype enumeration, and virtual-dispatch
// target resolution — against one hierarchy implementation.
func hierarchyQueries(h ir.Hierarchy, calls []*ir.InvokeExpr) int {
	n := 0
	classes := h.Classes()
	for _, c := range classes {
		for _, d := range classes {
			if h.SubtypeOf(c.Name, d.Name) {
				n++
			}
		}
		n += len(h.SubtypesOf(c.Name))
	}
	r := callgraph.ResolverFor(h)
	for _, call := range calls {
		n += len(r.VirtualTargets(call))
	}
	return n
}

// benchHierarchy measures the query mix, reporting subtype walks and the
// answer checksum (identical across substrates by construction).
func benchHierarchy(b *testing.B, mk func(*ir.Program) ir.Hierarchy) {
	prog := smokeProgram(b)
	calls := virtualCalls(prog)
	total := 0
	b.ResetTimer()
	walks0 := ir.SubtypeWalks()
	for i := 0; i < b.N; i++ {
		total += hierarchyQueries(mk(prog), calls)
	}
	b.ReportMetric(float64(ir.SubtypeWalks()-walks0)/float64(b.N), "walks/op")
	b.ReportMetric(float64(total/b.N), "answers")
}

func BenchmarkSmokeHierarchy(b *testing.B) {
	b.Run("program", func(b *testing.B) {
		benchHierarchy(b, func(p *ir.Program) ir.Hierarchy { return p })
	})
	b.Run("scene", func(b *testing.B) {
		benchHierarchy(b, func(p *ir.Program) ir.Hierarchy { return scene.New(p) })
	})
}

// smokeCorpus is the small end-to-end population: large enough for the
// walk counts to be meaningful, small enough for -benchtime=1x smoke runs.
const smokeCorpusN = 8

// analyzeLegacy reproduces the pre-Scene pipeline shape: every phase
// resolves against the raw program, so each re-walks the class graph.
func analyzeLegacy(b *testing.B, files map[string]string) int {
	b.Helper()
	ctx := context.Background()
	app, err := apk.LoadFiles(files)
	if err != nil {
		b.Fatal(err)
	}
	cbs := callbacks.Discover(ctx, app)
	entry, err := lifecycle.Generate(app, cbs, lifecycle.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	graph := pta.Build(ctx, app.Program, entry).Graph
	icfg := cfg.NewICFG(app.Program, graph)
	mgr := sourcesink.Default(app.Program)
	mgr.AttachApp(app)
	res := taint.Analyze(ctx, icfg, mgr, taint.DefaultConfig(), entry)
	return len(res.DistinctSourceSinkPairs())
}

// benchCorpus analyzes the corpus end to end with the given per-app
// analyzer, reporting walks and leaks per op.
func benchCorpus(b *testing.B, analyze func(*testing.B, map[string]string) int) {
	apps := appgen.GenerateCorpus(appgen.Malware, smokeCorpusN, 1)
	leaks := 0
	b.ResetTimer()
	walks0 := ir.SubtypeWalks()
	for i := 0; i < b.N; i++ {
		leaks = 0
		for _, app := range apps {
			leaks += analyze(b, app.Files)
		}
	}
	b.ReportMetric(float64(ir.SubtypeWalks()-walks0)/float64(b.N), "walks/op")
	b.ReportMetric(float64(leaks), "leaks")
}

func BenchmarkSmokeCorpus(b *testing.B) {
	b.Run("legacy", func(b *testing.B) {
		benchCorpus(b, analyzeLegacy)
	})
	b.Run("scene", func(b *testing.B) {
		benchCorpus(b, func(b *testing.B, files map[string]string) int {
			res, err := core.AnalyzeFiles(context.Background(), files, core.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			return len(res.Leaks())
		})
	})
}
