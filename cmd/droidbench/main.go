// Command droidbench regenerates Table 1 of the paper: the DroidBench 1.0
// comparison of FlowDroid against the AppScan-Source-like and
// Fortify-SCA-like baselines, with per-app marks and the aggregate
// precision/recall/F-measure rows.
//
// Usage:
//
//	droidbench            # full three-tool table
//	droidbench -tool flowdroid
//	droidbench -list      # list the suite's apps and ground truth
package main

import (
	"flag"
	"fmt"
	"os"

	"flowdroid/internal/baseline"
	"flowdroid/internal/droidbench"
)

func main() {
	var (
		tool = flag.String("tool", "", "run a single tool: flowdroid, appscan or fortify")
		list = flag.Bool("list", false, "list the benchmark apps and their ground truth")
	)
	flag.Parse()

	if *list {
		for _, c := range droidbench.Cases() {
			fmt.Printf("%-30s %-32s expected leaks: %d\n    %s\n",
				c.Name, "("+c.Category+")", c.ExpectedLeaks, c.Note)
		}
		fmt.Printf("\n%d apps, %d expected leaks in total\n",
			len(droidbench.Cases()), droidbench.TotalExpectedLeaks())
		return
	}

	if *tool != "" {
		var a droidbench.Analyzer
		switch *tool {
		case "flowdroid":
			a = droidbench.FlowDroid()
		case "appscan":
			a = baseline.AppScanLike()
		case "fortify":
			a = baseline.FortifyLike()
		default:
			fmt.Fprintf(os.Stderr, "unknown tool %q\n", *tool)
			os.Exit(2)
		}
		results := droidbench.RunSuite(a)
		fmt.Print(droidbench.RenderTable([]string{a.Name}, [][]droidbench.CaseResult{results}))
		return
	}

	fmt.Print(baseline.Table1())
}
