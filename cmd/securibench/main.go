// Command securibench regenerates Table 2 of the paper: FlowDroid's
// results on the evaluated SecuriBench Micro categories.
//
// Usage:
//
//	securibench          # print Table 2
//	securibench -cases   # list cases with ground truth and expectations
package main

import (
	"flag"
	"fmt"
	"os"

	"flowdroid/internal/securibench"
)

func main() {
	cases := flag.Bool("cases", false, "list the individual cases")
	flag.Parse()

	if *cases {
		for _, c := range securibench.Cases() {
			fmt.Printf("%-18s %-14s expected %d, FlowDroid finds %d\n    %s\n",
				c.Name, "("+c.Category+")", c.ExpectedLeaks, c.FlowDroidFinds, c.Note)
		}
		return
	}
	results, err := securibench.RunSuite()
	if err != nil {
		fmt.Fprintln(os.Stderr, "securibench:", err)
		os.Exit(2)
	}
	fmt.Print(securibench.RenderTable(results))
}
