// Command corpus regenerates the RQ3 experiments: synthetic Google-Play-
// like and malware-like app populations are generated deterministically,
// analyzed with the default configuration, and summarized the way Section
// 6.3 reports them (apps leaking, leaks per app, sink distribution,
// per-app analysis times).
//
// Per-app failures never abort the batch: a panicking, timed-out or
// budget-exhausted app is counted in the abnormal-outcomes section of the
// summary and the remaining apps are analyzed normally.
//
// Usage:
//
//	corpus -profile play -n 500 -seed 1
//	corpus -profile malware -n 1000 -seed 2
//	corpus -n 50 -timeout 2s -max-propagations 500000 -degrade
//	corpus -profile malware -n 100 -sinks sms
//
// With -sinks the batch runs in demand-driven query mode: each app is
// analyzed only for the named sink selectors, the summary reports the
// aggregated reachability-cone size and skipped components, and the
// injected-ground-truth recall check is suspended (the ground truth
// spans all sinks, the query does not).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"flowdroid/internal/appgen"
	"flowdroid/internal/metrics"
)

func main() {
	var (
		profile     = flag.String("profile", "malware", "population profile: play, malware, or stress")
		n           = flag.Int("n", 100, "number of apps to generate and analyze")
		seed        = flag.Int64("seed", 1, "generation seed")
		export      = flag.String("export", "", "also write the generated app packages under this directory")
		timeout     = flag.Duration("timeout", 0, "per-app analysis deadline (0 = none)")
		maxProps    = flag.Int("max-propagations", 0, "per-app taint-propagation budget (0 = unlimited)")
		degrade     = flag.Bool("degrade", false, "retry budget-exhausted apps with cheaper configurations")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "per-app taint solver worker-pool size (<=1 = sequential)")
		forcePanic  = flag.String("force-panic", "", "inject a panic while analyzing the named app (tests batch isolation)")
		lint        = flag.Bool("lint", false, "run the IR verifier before each app's solvers")
		sinks       = flag.String("sinks", "", "comma-separated sink selectors for a demand-driven query (empty = all sinks)")
		summaryDir  = flag.String("summary-dir", "", "persistent method-summary store directory; a repeated run over the same corpus re-analyzes warm (empty = disabled)")
		traceFile   = flag.String("trace", "", "write a JSONL span trace of every app's pipeline to this file")
		showMetrics = flag.Bool("metrics", false, "print the corpus-aggregated metrics snapshot as JSON after the summary")
		noCarriers  = flag.Bool("no-string-carriers", false, "disable the string-carrier fast path (String/StringBuilder/StringBuffer transfer functions and alias-search gating)")
		noReflect   = flag.Bool("no-reflection", false, "disable reflection resolution; injected reflective leaks become invisible, so the exact-recall check is suspended")
	)
	flag.Parse()

	var p appgen.Profile
	switch *profile {
	case "play":
		p = appgen.Play
	case "malware":
		p = appgen.Malware
	case "stress":
		p = appgen.Stress
	case "reflection":
		p = appgen.Reflection
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q (want play, malware, stress, or reflection)\n", *profile)
		os.Exit(64)
	}
	if *export != "" {
		if _, err := appgen.ExportCorpus(p, *n, *seed, *export); err != nil {
			fmt.Fprintln(os.Stderr, "corpus:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %d app packages under %s\n", *n, *export)
	}
	ro := appgen.RunOptions{
		Timeout:          *timeout,
		MaxPropagations:  *maxProps,
		Degrade:          *degrade,
		Workers:          *workers,
		FaultInject:      *forcePanic,
		Lint:             *lint,
		SummaryDir:       *summaryDir,
		NoStringCarriers: *noCarriers,
		NoReflection:     *noReflect,
	}
	if *sinks != "" {
		for _, sel := range strings.Split(*sinks, ",") {
			if sel = strings.TrimSpace(sel); sel != "" {
				ro.Sinks = append(ro.Sinks, sel)
			}
		}
	}
	// An interrupt (SIGINT/SIGTERM) cancels the batch context: the app
	// being analyzed stops at its next stage boundary, the apps never
	// attempted are counted in the summary's incomplete line, and the
	// partial summary still prints instead of the process dying
	// mid-write. A second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// One recorder is shared by every app in the batch: counters
	// accumulate corpus-wide, which is exactly the rollup the summary
	// wants. With neither flag set the pipelines run uninstrumented.
	var rec *metrics.Recorder
	if *traceFile != "" || *showMetrics {
		rec = metrics.New()
		ctx = metrics.Into(ctx, rec)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "corpus:", err)
			os.Exit(64)
		}
		rec.SetTrace(metrics.NewTrace(f))
	}
	stats, err := appgen.RunCorpusWith(ctx, p, *n, *seed, ro)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corpus:", err)
		os.Exit(2)
	}
	fmt.Print(stats.Render())
	if *showMetrics {
		out, err := json.MarshalIndent(rec.Snapshot(), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "corpus:", err)
			os.Exit(2)
		}
		fmt.Printf("metrics:\n%s\n", out)
	}
	if ctx.Err() != nil {
		// An interrupted batch reported partial results above; exit 2
		// (incomplete) so scripts never mistake it for a full run whose
		// ground truth failed to match.
		fmt.Fprintf(os.Stderr, "corpus: interrupted, %d app(s) never attempted\n", stats.Incomplete)
		os.Exit(2)
	}
	// Under a sink query the injected ground truth spans all sinks while
	// the report is restricted to the queried ones; under -no-reflection
	// the injected reflective leaks are intentionally invisible. The
	// exact-recall check only applies to full whole-program runs.
	if len(ro.Sinks) == 0 && !ro.NoReflection && stats.TotalFound != stats.TotalInjected {
		fmt.Printf("WARNING: found %d leaks but injected %d\n",
			stats.TotalFound, stats.TotalInjected)
		os.Exit(1)
	}
}
