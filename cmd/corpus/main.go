// Command corpus regenerates the RQ3 experiments: synthetic Google-Play-
// like and malware-like app populations are generated deterministically,
// analyzed with the default configuration, and summarized the way Section
// 6.3 reports them (apps leaking, leaks per app, sink distribution,
// per-app analysis times).
//
// Usage:
//
//	corpus -profile play -n 500 -seed 1
//	corpus -profile malware -n 1000 -seed 2
package main

import (
	"flag"
	"fmt"
	"os"

	"flowdroid/internal/appgen"
)

func main() {
	var (
		profile = flag.String("profile", "malware", "population profile: play or malware")
		n       = flag.Int("n", 100, "number of apps to generate and analyze")
		seed    = flag.Int64("seed", 1, "generation seed")
		export  = flag.String("export", "", "also write the generated app packages under this directory")
	)
	flag.Parse()

	var p appgen.Profile
	switch *profile {
	case "play":
		p = appgen.Play
	case "malware":
		p = appgen.Malware
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q (want play or malware)\n", *profile)
		os.Exit(2)
	}
	if *export != "" {
		if _, err := appgen.ExportCorpus(p, *n, *seed, *export); err != nil {
			fmt.Fprintln(os.Stderr, "corpus:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %d app packages under %s\n", *n, *export)
	}
	stats, err := appgen.RunCorpus(p, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corpus:", err)
		os.Exit(2)
	}
	fmt.Print(stats.Render())
	if stats.TotalFound != stats.TotalInjected {
		fmt.Printf("WARNING: found %d leaks but injected %d\n",
			stats.TotalFound, stats.TotalInjected)
		os.Exit(1)
	}
}
