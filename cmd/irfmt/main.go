// Command irfmt parses, checks and pretty-prints .ir files — the
// gofmt/vet analogue for the textual IR. It is handy when writing app
// packages or benchmark cases by hand: it reports parse and link errors
// with positions, and normalizes formatting via the canonical printer.
//
// Usage:
//
//	irfmt file.ir...        # print the formatted program to stdout
//	irfmt -w file.ir...     # rewrite the files in place
//	irfmt -check file.ir... # parse and link only; report errors
//
// Files are linked against the built-in Android/Java framework model, so
// references to framework classes resolve.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flowdroid/internal/framework"
	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
)

func main() {
	var (
		write = flag.Bool("w", false, "write the formatted output back to the files")
		check = flag.Bool("check", false, "only parse and link; print nothing on success")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: irfmt [-w|-check] file.ir...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		if err := run(path, *write, *check); err != nil {
			fmt.Fprintln(os.Stderr, "irfmt:", err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func run(path string, write, check bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog := framework.NewProgram()
	frameworkClasses := make(map[string]bool)
	for _, c := range prog.Classes() {
		frameworkClasses[c.Name] = true
	}
	if err := irtext.ParseInto(prog, string(data), path); err != nil {
		return err
	}
	if err := prog.Link(); err != nil {
		return err
	}
	if check {
		return nil
	}
	var sb strings.Builder
	for _, c := range prog.Classes() {
		if frameworkClasses[c.Name] {
			continue
		}
		sb.WriteString(ir.PrintClass(c))
		sb.WriteString("\n")
	}
	if write {
		return os.WriteFile(path, []byte(sb.String()), 0o644)
	}
	fmt.Print(sb.String())
	return nil
}
