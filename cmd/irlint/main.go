// Command irlint verifies IR programs without running any analysis: it
// parses each argument (an app package directory or zip, or a plain .ir
// file), runs the internal/irlint analyzers over the linked program and
// prints the diagnostics.
//
// Usage:
//
//	irlint [flags] <app-dir | app.zip | file.ir>...
//	irlint -fixtures
//	irlint -list
//
// -fixtures lints every program the repository ships — the test apps,
// InsecureBank, the DroidBench and SecuriBench Micro suites and a sample
// of generated corpus apps — which is how CI keeps the fixtures
// Error-clean.
//
// -json emits one envelope for the whole run:
//
//	{"packages": [{"package": ..., "diagnostics": [...],
//	               "errors": N, "warnings": M}, ...],
//	 "errors": N, "warnings": M}
//
// Exit codes: 0 = no Error diagnostics, 1 = at least one Error
// diagnostic, 2 = a program failed to load or parse, 64 = usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"flowdroid/internal/apk"
	"flowdroid/internal/appgen"
	"flowdroid/internal/droidbench"
	"flowdroid/internal/framework"
	"flowdroid/internal/insecurebank"
	"flowdroid/internal/ir"
	"flowdroid/internal/irlint"
	"flowdroid/internal/irtext"
	"flowdroid/internal/securibench"
	"flowdroid/internal/sourcesink"
	"flowdroid/internal/testapps"
)

const (
	exitClean  = 0
	exitErrors = 1
	exitLoad   = 2
	exitUsage  = 64
)

// pkgReport is one linted program in the JSON envelope.
type pkgReport struct {
	Package     string              `json:"package"`
	Diagnostics []irlint.Diagnostic `json:"diagnostics"`
	Errors      int                 `json:"errors"`
	Warnings    int                 `json:"warnings"`
}

// report is the whole run's envelope.
type report struct {
	Packages []pkgReport `json:"packages"`
	Errors   int         `json:"errors"`
	Warnings int         `json:"warnings"`
}

var flags = flag.NewFlagSet("irlint", flag.ContinueOnError)

func main() {
	var (
		enable    = flags.String("enable", "", "comma-separated analyzer names to run (default: all)")
		disable   = flags.String("disable", "", "comma-separated analyzer names to skip")
		jsonOut   = flags.Bool("json", false, "emit the diagnostics as a JSON envelope")
		rulesFile = flags.String("rules", "", "source/sink rules file checked by the registrations analyzer")
		fixtures  = flags.Bool("fixtures", false, "lint every program shipped in the repository")
		list      = flags.Bool("list", false, "list the registered analyzers and exit")
	)
	flags.SetOutput(os.Stderr)
	if err := flags.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(exitClean)
		}
		os.Exit(exitUsage)
	}

	if *list {
		for _, a := range irlint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		os.Exit(exitClean)
	}

	analyzers, err := irlint.Select(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "irlint:", err)
		os.Exit(exitUsage)
	}
	var rules string
	if *rulesFile != "" {
		data, err := os.ReadFile(*rulesFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "irlint:", err)
			os.Exit(exitUsage)
		}
		rules = string(data)
	}

	var rep report
	switch {
	case *fixtures:
		if flags.NArg() > 0 {
			usageError("-fixtures takes no arguments")
		}
		rep = lintFixtures(analyzers)
	case flags.NArg() > 0:
		rep = lintArgs(flags.Args(), analyzers, rules)
	default:
		usageError("usage: irlint [flags] <app-dir | app.zip | file.ir>...  (or -fixtures)")
	}

	for _, p := range rep.Packages {
		rep.Errors += p.Errors
		rep.Warnings += p.Warnings
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "irlint:", err)
			os.Exit(exitLoad)
		}
	} else {
		for _, p := range rep.Packages {
			for _, d := range p.Diagnostics {
				fmt.Printf("%s: %s\n", p.Package, d)
			}
		}
		fmt.Printf("%d package(s): %d error(s), %d warning(s)\n",
			len(rep.Packages), rep.Errors, rep.Warnings)
	}
	if rep.Errors > 0 {
		os.Exit(exitErrors)
	}
	os.Exit(exitClean)
}

// lintArgs lints each command-line path: app package directories and
// zips are loaded through the apk loader (so layout click handlers are
// checked); anything else is parsed as an IR source file against the
// framework stubs.
func lintArgs(paths []string, analyzers []*irlint.Analyzer, rules string) report {
	var rep report
	for _, path := range paths {
		var (
			h        ir.Hierarchy
			handlers map[string][]string
		)
		switch {
		case strings.HasSuffix(path, ".ir"):
			prog := framework.NewProgram()
			data, err := os.ReadFile(path)
			if err != nil {
				loadError(err)
			}
			if err := irtext.ParseInto(prog, string(data), path); err != nil {
				loadError(err)
			}
			if err := prog.Link(); err != nil {
				loadError(err)
			}
			h = prog
		case strings.HasSuffix(path, ".zip") || strings.HasSuffix(path, ".apk"):
			app, err := apk.LoadZip(path)
			if err != nil {
				loadError(err)
			}
			h, handlers = app.Program, clickHandlers(app)
		default:
			app, err := apk.LoadDir(path)
			if err != nil {
				loadError(err)
			}
			h, handlers = app.Program, clickHandlers(app)
		}
		conf := irlint.Config{Analyzers: analyzers, ClickHandlers: handlers}
		if rules != "" {
			mgr, err := sourcesink.Parse(h, rules)
			if err != nil {
				loadError(err)
			}
			conf.Sources, conf.Sinks = mgr.Sources(), mgr.Sinks()
		}
		rep.Packages = append(rep.Packages, pkg(path, irlint.Run(h, conf)))
	}
	return rep
}

// lintFixtures lints every program the repository ships, one package
// entry per fixture, in deterministic name order within each suite.
func lintFixtures(analyzers []*irlint.Analyzer) report {
	var rep report
	lintApp := func(name string, files map[string]string) {
		app, err := apk.LoadFiles(files)
		if err != nil {
			loadError(fmt.Errorf("%s: %w", name, err))
		}
		res := irlint.Run(app.Program, irlint.Config{
			Analyzers:     analyzers,
			ClickHandlers: clickHandlers(app),
		})
		rep.Packages = append(rep.Packages, pkg(name, res))
	}

	lintApp("testapps/LeakageApp", testapps.LeakageApp)
	lintApp("testapps/LocationApp", testapps.LocationApp)
	lintApp("insecurebank", insecurebank.Files)
	for _, c := range droidbench.Cases() {
		lintApp("droidbench/"+c.Name, c.Files)
	}
	for _, c := range securibench.Cases() {
		prog, err := securibench.Program(c)
		if err != nil {
			loadError(err)
		}
		mgr, err := sourcesink.Parse(prog, securibench.Rules())
		if err != nil {
			loadError(err)
		}
		res := irlint.Run(prog, irlint.Config{
			Analyzers: analyzers,
			Sources:   mgr.Sources(),
			Sinks:     mgr.Sinks(),
		})
		rep.Packages = append(rep.Packages, pkg("securibench/"+c.Name, res))
	}
	for _, p := range []struct {
		name    string
		profile appgen.Profile
	}{{"play", appgen.Play}, {"malware", appgen.Malware}, {"stress", appgen.Stress}} {
		for _, app := range appgen.GenerateCorpus(p.profile, 3, 1) {
			lintApp("appgen/"+p.name+"/"+app.Name, app.Files)
		}
	}
	return rep
}

// pkg builds one package entry, with diagnostics already sorted and
// deduplicated by irlint.Run.
func pkg(name string, res *irlint.Result) pkgReport {
	d := res.Diagnostics
	if d == nil {
		d = []irlint.Diagnostic{}
	}
	return pkgReport{Package: name, Diagnostics: d, Errors: res.Errors(), Warnings: res.Warnings()}
}

// clickHandlers collects the app's layout-declared android:onClick
// handlers keyed by layout name, for the registrations analyzer.
func clickHandlers(app *apk.App) map[string][]string {
	out := make(map[string][]string)
	names := make([]string, 0, len(app.Layouts))
	for name := range app.Layouts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if hs := app.Layouts[name].ClickHandlers(); len(hs) > 0 {
			out[name] = hs
		}
	}
	return out
}

func loadError(err error) {
	fmt.Fprintln(os.Stderr, "irlint:", err)
	os.Exit(exitLoad)
}

func usageError(msg string) {
	fmt.Fprintln(os.Stderr, msg)
	flags.PrintDefaults()
	os.Exit(exitUsage)
}
