// Command flowdroidd is the resident analysis daemon: it keeps the
// FlowDroid pipeline warm in one long-running process and serves an
// HTTP/JSON submit/status/result API, so clients stop paying a full
// cold start per app the way subprocess-per-APK deployments do.
//
// Usage:
//
//	flowdroidd [flags]
//
// API (see internal/service):
//
//	POST /v1/jobs             submit {"files": {...}, "deadline": ...}
//	GET  /v1/jobs/{id}        poll the job state
//	GET  /v1/jobs/{id}/result fetch the finished report (canonical leaks)
//	GET  /healthz             liveness; 503 while draining
//	GET  /metrics             metrics snapshot as JSON
//
// Robustness properties, all enforced in internal/service:
//
//   - The job queue is bounded (-queue); a submission that does not fit
//     is rejected with 429 + Retry-After, never buffered.
//   - Every job is deadline- and budget-bounded (-default-timeout,
//     -max-timeout, -max-propagations) through the core resilience
//     layer, so the worst case is a partial, explained result.
//   - A global worker budget (-worker-budget) is shared fairly across
//     the -analyses concurrent executors.
//   - Repeated Recovered/InvalidProgram outcomes for one app
//     fingerprint trip a circuit breaker (-breaker-trip,
//     -breaker-cooldown): known-poison inputs are rejected up front.
//   - SIGINT/SIGTERM starts a graceful drain: admission stops, queued
//     and in-flight jobs finish (or are deadline-cancelled after
//     -drain-timeout), sinks are flushed, then the process exits.
//
// Exit codes follow the repository discipline:
//
//	0  clean drain (every job finished)
//	2  forced drain (drain timeout cancelled in-flight jobs) or serve error
//	64 usage error
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"flowdroid/internal/metrics"
	"flowdroid/internal/service"
)

const (
	exitClean  = 0
	exitForced = 2
	exitUsage  = 64
)

var flags = flag.NewFlagSet("flowdroidd", flag.ContinueOnError)

func main() {
	os.Exit(run())
}

// run is main with an exit code, so deferred cleanup (trace flush,
// listener close) still executes on every path.
func run() int {
	var (
		addr         = flags.String("addr", "127.0.0.1:8040", "HTTP listen address")
		queueSize    = flags.Int("queue", 64, "job queue bound; submissions beyond it are rejected with 429")
		analyses     = flags.Int("analyses", 2, "concurrent analysis executors")
		workerBudget = flags.Int("worker-budget", runtime.GOMAXPROCS(0), "global taint-worker budget shared fairly across executors")
		defTimeout   = flags.Duration("default-timeout", 2*time.Minute, "per-job deadline for requests that set none")
		maxTimeout   = flags.Duration("max-timeout", 10*time.Minute, "cap on requested per-job deadlines")
		maxProps     = flags.Int("max-propagations", 0, "default per-job taint-propagation budget (0 = unlimited)")
		breakerTrip  = flags.Int("breaker-trip", 3, "consecutive bad outcomes per app fingerprint that trip its circuit breaker (-1 disables)")
		breakerCool  = flags.Duration("breaker-cooldown", 30*time.Second, "how long a tripped circuit stays open before one probe is admitted")
		drainTimeout = flags.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight jobs before cancelling them")
		retainJobs   = flags.Int("retain-jobs", 1024, "finished jobs kept queryable before eviction")
		summaryDir   = flags.String("summary-dir", "", "persistent method-summary store directory shared by all jobs; resubmitted app updates re-analyze warm (empty = disabled)")
		noCarriers   = flags.Bool("no-string-carriers", false, "disable the string-carrier fast path for all jobs (String/StringBuilder/StringBuffer transfer functions and alias-search gating)")
		noReflect    = flags.Bool("no-reflection", false, "disable reflection resolution for all jobs (constant-string propagation, reflective call edges and soundness reports)")
		traceFile    = flags.String("trace", "", "write a JSONL span trace of every job's pipeline to this file")
		pprofOn      = flags.Bool("pprof", false, "also mount /debug/pprof and /debug/vars on the API mux")
	)
	flags.SetOutput(os.Stderr)
	if err := flags.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			return exitClean
		}
		return exitUsage
	}
	if flags.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: flowdroidd [flags]")
		flags.PrintDefaults()
		return exitUsage
	}

	// The daemon always records metrics: /metrics is part of the API.
	rec := metrics.New()
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowdroidd:", err)
			return exitUsage
		}
		tr := metrics.NewTrace(f)
		rec.SetTrace(tr)
		defer tr.Close()
	}

	svc := service.New(service.Config{
		QueueSize:              *queueSize,
		Analyses:               *analyses,
		WorkerBudget:           *workerBudget,
		DefaultDeadline:        *defTimeout,
		MaxDeadline:            *maxTimeout,
		DefaultMaxPropagations: *maxProps,
		BreakerTrip:            *breakerTrip,
		BreakerCooldown:        *breakerCool,
		RetainJobs:             *retainJobs,
		SummaryDir:             *summaryDir,
		DisableStringCarriers:  *noCarriers,
		DisableReflection:      *noReflect,
		Recorder:               rec,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowdroidd:", err)
		return exitUsage
	}
	httpSrv := &http.Server{Handler: svc.Handler(*pprofOn)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "flowdroidd: listening on http://%s (queue %d, analyses %d, worker budget %d)\n",
		ln.Addr(), *queueSize, *analyses, *workerBudget)

	// SIGINT/SIGTERM starts the drain; a second signal kills the process
	// the default way (NotifyContext unregisters after the first).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-serveErr:
		// The listener died out from under us; drain what was admitted.
		fmt.Fprintf(os.Stderr, "flowdroidd: serve error: %v\n", err)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		svc.Shutdown(dctx)
		return exitForced
	case <-ctx.Done():
		stop()
	}

	fmt.Fprintf(os.Stderr, "flowdroidd: signal received, draining (timeout %v)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	forced := svc.Shutdown(dctx)

	// The API stays up through the drain so clients can poll results;
	// now tear it down and report.
	hctx, hcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer hcancel()
	if err := httpSrv.Shutdown(hctx); err != nil {
		httpSrv.Close()
	}
	<-serveErr // the serve loop has returned ErrServerClosed

	st := svc.Stats()
	snap := rec.Snapshot()
	fmt.Fprintf(os.Stderr, "flowdroidd: drained: %d completed, %d failed, %d rejected (queue full %d, circuit open %d, draining %d)\n",
		snap.Schedule["service.completed"], snap.Schedule["service.failed"],
		snap.Schedule["service.rejected.queue_full"]+snap.Schedule["service.rejected.circuit_open"]+snap.Schedule["service.rejected.draining"],
		snap.Schedule["service.rejected.queue_full"], snap.Schedule["service.rejected.circuit_open"], snap.Schedule["service.rejected.draining"])
	if forced != nil {
		fmt.Fprintf(os.Stderr, "flowdroidd: drain timed out, in-flight jobs were cancelled (%d retained jobs)\n", st.Retained)
		return exitForced
	}
	return exitClean
}
