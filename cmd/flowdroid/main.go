// Command flowdroid analyzes an Android app package (a directory or zip
// archive containing AndroidManifest.xml, res/layout/*.xml and .ir code
// files) and reports data flows from sensitive sources to sinks.
//
// Usage:
//
//	flowdroid [flags] <app-dir-or-zip>
//	flowdroid -insecurebank
//
// The default configuration matches the paper: access-path length 5, full
// lifecycle model, on-demand alias analysis with activation statements,
// taint wrapper enabled. Runs can be bounded with -timeout and
// -max-propagations; -degrade retries a budget-exhausted run with
// cheaper configurations (CHA call graph, then shorter access paths).
//
// Exit codes distinguish the outcomes corpus scripts branch on:
//
//	0  analysis complete, no leaks
//	1  analysis complete, leaks found
//	2  analysis error or incomplete result (timeout, exhausted budget,
//	   leak cap reached, recovered panic, failed IR verification)
//	64 usage error (bad flags or arguments)
//
// A LeakLimitReached status (the -max-leaks style cap configured through
// the library's Taint.MaxLeaks) exits 2 like any other truncated run: the
// reported leaks are real but the set is not exhaustive.
//
// Reflection is resolved by default: an interprocedural constant-string
// propagation pass turns Class.forName/getMethod/newInstance/invoke
// chains over constant names into ordinary call edges, so taint flows
// through them like any other call. Sites the pass cannot resolve are
// listed in the run's soundness report ("soundness" in -json, a summary
// line in text mode) instead of being silently dropped. -no-reflection
// disables the pass entirely and restores the reflection-blind analysis.
//
// -sinks runs a demand-driven query: only the named sink rules (by
// label, Class.method or Class.method/N) are analyzed, and the pipeline
// builds just the backward reachability cone behind them — components
// outside the cone are never lifecycle-modeled. The report is exactly
// the whole-program report filtered to the queried sinks.
//
// An interrupt (SIGINT/SIGTERM) cancels the analysis context: the run
// stops at the next stage boundary and the partial result is reported as
// DeadlineExceeded (exit 2). A second signal kills the process.
//
// -workers sets the taint solver's worker-pool size (default GOMAXPROCS).
// The distinct leak report is identical at any worker count; only the
// path witnesses (-paths) may pick different derivations.
//
// -summary-dir DIR enables the persistent method-summary store: completed
// runs record per-method summaries under DIR, and later runs on updated
// versions of the app replay the summaries of unchanged methods instead
// of re-solving them. The leak report is identical with or without the
// store; -stats and -json expose the hit/miss/reuse counters.
//
// Observability (all opt-in, zero cost when absent):
//
//	-trace FILE    write a JSONL span trace of the pipeline (validated
//	               by scripts/checktrace)
//	-metrics       print the metrics snapshot as JSON; with -json it is
//	               embedded in the report under "metrics"
//	-pprof-addr A  serve net/http/pprof and expvar on A for the run's
//	               duration; the live snapshot is published as the
//	               expvar "flowdroid.metrics"
//
// IR verification (-lint, with -lint.enable/-lint.disable/-lint.json)
// runs the internal/irlint analyzers between the front-end and the
// solvers: Error diagnostics abort the run with status InvalidProgram
// (exit 2); warnings are reported and the analysis proceeds. The
// standalone cmd/irlint lints IR packages without running any analysis.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"flowdroid/internal/core"
	"flowdroid/internal/insecurebank"
	"flowdroid/internal/irlint"
	"flowdroid/internal/lifecycle"
	"flowdroid/internal/metrics"
	"flowdroid/internal/service"
)

const (
	exitClean    = 0
	exitLeaks    = 1
	exitAnalysis = 2
	exitUsage    = 64
)

// jsonReport is the machine-readable envelope of a run: the leak report
// plus the resilience metadata scripts branch on.
type jsonReport struct {
	Status   string   `json:"status"`
	Failure  string   `json:"failure,omitempty"`
	Degraded []string `json:"degraded,omitempty"`
	Counters struct {
		CallGraphEdges   int `json:"callGraphEdges"`
		PTAPropagations  int `json:"ptaPropagations"`
		Propagations     int `json:"propagations"`
		PathEdges        int `json:"pathEdges"`
		Summaries        int `json:"summaries"`
		PeakAbstractions int `json:"peakAbstractions"`
		Workers          int `json:"workers"`
		// ConeMethods/SkippedComponents are the demand-driven query's
		// reachability-cone size and the components it let lifecycle
		// modeling skip; zero (omitted) outside query mode.
		ConeMethods       int `json:"coneMethods,omitempty"`
		SkippedComponents int `json:"skippedComponents,omitempty"`
		// Reflection counters: invoke-sites the constant-propagation pass
		// resolved into call edges vs. left opaque; zero (omitted) under
		// -no-reflection.
		ReflectionResolved   int `json:"reflectionResolved,omitempty"`
		ReflectionUnresolved int `json:"reflectionUnresolved,omitempty"`
		// Summary-store counters, all zero (omitted) without -summary-dir.
		SummaryHits        int `json:"summaryHits,omitempty"`
		SummaryMisses      int `json:"summaryMisses,omitempty"`
		SummaryInvalidated int `json:"summaryInvalidated,omitempty"`
		SummaryCorrupt     int `json:"summaryCorrupt,omitempty"`
		MethodsExplored    int `json:"methodsExplored,omitempty"`
		MethodsReused      int `json:"methodsReused,omitempty"`
		SummariesPersisted int `json:"summariesPersisted,omitempty"`
	} `json:"counters"`
	// Passes reports per-pipeline-pass execution vs. memoized-artifact
	// reuse (runs/hits), non-trivial when -degrade retried the analysis.
	Passes core.PassStats `json:"passes,omitempty"`
	// Metrics is the recorder snapshot, present only under -metrics.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
	// Lint holds the IR verifier's diagnostics, present only under -lint.
	Lint []irlint.Diagnostic `json:"lint,omitempty"`
	// Soundness lists the reflective sites the constant-propagation pass
	// could not resolve; omitted when empty and under -no-reflection, so
	// reflection-free apps report identically in both modes.
	Soundness *core.SoundnessReport `json:"soundness,omitempty"`
	Leaks     any                   `json:"leaks"`
}

// flags is the program's flag set. A package-level ContinueOnError set
// (instead of the flag package's default, which exits 2 on a bad flag)
// lets main route parse failures to the usage exit code.
var flags = flag.NewFlagSet("flowdroid", flag.ContinueOnError)

func main() {
	os.Exit(run())
}

// run is main with an exit code: every path returns instead of calling
// os.Exit, so the deferred cleanup (debug-listener close, signal-handler
// release) always executes.
func run() int {
	var (
		apLength    = flags.Int("ap-length", 5, "maximal access-path length")
		noAlias     = flags.Bool("no-alias", false, "disable the on-demand alias analysis")
		noAct       = flags.Bool("no-activation", false, "disable activation statements (Andromeda-style aliasing)")
		noCarriers  = flags.Bool("no-string-carriers", false, "disable the string-carrier fast path (String/StringBuilder/StringBuffer transfer functions and alias-search gating)")
		noReflect   = flags.Bool("no-reflection", false, "disable reflection resolution (constant-string propagation, reflective call edges and the soundness report)")
		noLifecycle = flags.Bool("no-lifecycle", false, "model only component creation, not the full lifecycle")
		flat        = flags.Bool("flat-lifecycle", false, "single-pass lifecycle in canonical order")
		useCHA      = flags.Bool("cha", false, "use the CHA call graph instead of points-to")
		rulesFile   = flags.String("rules", "", "replace the built-in source/sink rules with this file")
		sinks       = flags.String("sinks", "", "comma-separated sink selectors (label, Class.method, Class.method/N) for a demand-driven query; empty = all sinks")
		showPaths   = flags.Bool("paths", false, "print the reconstructed statement path of each leak")
		jsonOut     = flags.Bool("json", false, "emit the leak report as JSON")
		showStats   = flags.Bool("stats", false, "print solver statistics and timings")
		bank        = flags.Bool("insecurebank", false, "analyze the built-in InsecureBank app (RQ2)")
		timeout     = flags.Duration("timeout", 0, "abort the analysis after this long and report the partial result (0 = no limit)")
		maxProps    = flags.Int("max-propagations", 0, "taint-propagation budget; 0 = unlimited")
		degrade     = flags.Bool("degrade", false, "on budget exhaustion retry with cheaper configurations (CHA, shorter access paths)")
		workers     = flags.Int("workers", runtime.GOMAXPROCS(0), "taint solver worker-pool size (<=1 = sequential)")
		summaryDir  = flags.String("summary-dir", "", "persistent method-summary store directory for warm re-analysis (empty = disabled)")
		lint        = flags.Bool("lint", false, "run the IR verifier before the solvers; Error diagnostics abort with status InvalidProgram")
		lintEnable  = flags.String("lint.enable", "", "comma-separated analyzer names to run (default: all)")
		lintDisable = flags.String("lint.disable", "", "comma-separated analyzer names to skip")
		lintJSON    = flags.Bool("lint.json", false, "emit lint diagnostics as JSON (implies -lint)")
		traceFile   = flags.String("trace", "", "write a JSONL span trace of the pipeline to this file")
		showMetrics = flags.Bool("metrics", false, "print the metrics snapshot as JSON (embedded in the report under -json)")
		pprofAddr   = flags.String("pprof-addr", "", "serve net/http/pprof and expvar on this address for the run's duration (e.g. localhost:6060)")
	)
	flags.SetOutput(os.Stderr)
	if err := flags.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			return exitClean
		}
		return exitUsage
	}

	opts := core.DefaultOptions()
	opts.Taint.APLength = *apLength
	opts.Taint.EnableAliasing = !*noAlias
	opts.Taint.EnableActivation = !*noAct
	opts.Taint.StringCarriers = !*noCarriers
	opts.ResolveReflection = !*noReflect
	opts.UseCHA = *useCHA
	opts.MaxPropagations = *maxProps
	opts.Degrade = *degrade
	opts.Taint.Workers = *workers
	opts.SummaryDir = *summaryDir
	opts.Lint = *lint || *lintJSON || *lintEnable != "" || *lintDisable != ""
	opts.LintEnable = *lintEnable
	opts.LintDisable = *lintDisable
	if *noLifecycle {
		opts.Lifecycle.Mode = lifecycle.CreateOnly
	}
	if *flat {
		opts.Lifecycle.Mode = lifecycle.FlatLifecycle
	}
	if *rulesFile != "" {
		data, err := os.ReadFile(*rulesFile)
		if err != nil {
			return usageError(err.Error())
		}
		opts.SourceSinkRules = string(data)
	}
	if *sinks != "" {
		for _, sel := range strings.Split(*sinks, ",") {
			if sel = strings.TrimSpace(sel); sel != "" {
				opts.Query.Sinks = append(opts.Query.Sinks, sel)
			}
		}
	}

	// An interrupt (SIGINT/SIGTERM) cancels the analysis context: the
	// pipeline stops at the next stage boundary and reports the partial
	// result as DeadlineExceeded (exit 2) instead of the process dying
	// mid-write. A second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// A recorder exists only when some observability surface asked for
	// one; otherwise the pipeline's instrumentation stays on its nil
	// fast path. The trace sink flushes every line eagerly, so the
	// os.Exit paths below cannot lose events.
	var rec *metrics.Recorder
	if *traceFile != "" || *showMetrics || *pprofAddr != "" {
		rec = metrics.New()
		ctx = metrics.Into(ctx, rec)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowdroid:", err)
			return exitUsage
		}
		rec.SetTrace(metrics.NewTrace(f))
	}
	if *pprofAddr != "" {
		// The shared debug endpoint (pprof + expvar + live metrics
		// snapshot): serve errors are logged, and the listener is closed
		// on every exit path instead of leaking for the process lifetime.
		dbg, err := service.ServeDebug(*pprofAddr, rec, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "flowdroid: "+format+"\n", args...)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowdroid:", err)
			return exitUsage
		}
		fmt.Fprintf(os.Stderr, "flowdroid: pprof/expvar listening on http://%s/debug/pprof/\n", dbg.Addr())
		defer dbg.Close()
	}

	var res *core.Result
	var err error
	switch {
	case *bank:
		res, err = core.AnalyzeFiles(ctx, insecurebank.Files, opts)
	case flags.NArg() == 1:
		path := flags.Arg(0)
		if strings.HasSuffix(path, ".zip") || strings.HasSuffix(path, ".apk") {
			res, err = core.AnalyzeZip(ctx, path, opts)
		} else {
			res, err = core.AnalyzeDir(ctx, path, opts)
		}
	default:
		return usageError("usage: flowdroid [flags] <app-dir-or-zip>  (or -insecurebank)")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowdroid:", err)
		return exitAnalysis
	}

	if *jsonOut {
		rep := jsonReport{Status: res.Status.String(), Degraded: res.Degraded, Passes: res.Passes, Leaks: res.Taint.Report()}
		if res.Lint != nil {
			rep.Lint = res.Lint.Diagnostics
		}
		if *showMetrics {
			snap := rec.Snapshot()
			rep.Metrics = &snap
		}
		if res.Failure != nil {
			rep.Failure = res.Failure.Error()
		}
		if !res.Soundness.Empty() {
			rep.Soundness = res.Soundness
		}
		rep.Counters.CallGraphEdges = res.Counters.CallGraphEdges
		rep.Counters.PTAPropagations = res.Counters.PTAPropagations
		rep.Counters.Propagations = res.Counters.Propagations
		rep.Counters.PathEdges = res.Counters.PathEdges
		rep.Counters.Summaries = res.Counters.Summaries
		rep.Counters.PeakAbstractions = res.Counters.PeakAbstractions
		rep.Counters.Workers = res.Counters.Workers
		rep.Counters.ConeMethods = res.Counters.ConeMethods
		rep.Counters.SkippedComponents = res.Counters.SkippedComponents
		rep.Counters.ReflectionResolved = res.Counters.ReflectionResolved
		rep.Counters.ReflectionUnresolved = res.Counters.ReflectionUnresolved
		rep.Counters.SummaryHits = res.Counters.SummaryHits
		rep.Counters.SummaryMisses = res.Counters.SummaryMisses
		rep.Counters.SummaryInvalidated = res.Counters.SummaryInvalidated
		rep.Counters.SummaryCorrupt = res.Counters.SummaryCorrupt
		rep.Counters.MethodsExplored = res.Counters.MethodsExplored
		rep.Counters.MethodsReused = res.Counters.MethodsReused
		rep.Counters.SummariesPersisted = res.Counters.SummariesPersisted
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "flowdroid:", err)
			return exitAnalysis
		}
		return exitCode(res)
	}

	if res.Lint != nil && len(res.Lint.Diagnostics) > 0 {
		if *lintJSON {
			out, err := json.MarshalIndent(res.Lint.Diagnostics, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "flowdroid:", err)
				return exitAnalysis
			}
			fmt.Printf("%s\n", out)
		} else {
			for _, d := range res.Lint.Diagnostics {
				fmt.Println(d)
			}
		}
		fmt.Printf("lint: %d error(s), %d warning(s)\n", res.Lint.Errors(), res.Lint.Warnings())
	}
	if res.Status == core.InvalidProgram {
		fmt.Println("analysis aborted: program failed IR verification")
		return exitAnalysis
	}
	if res.App != nil && res.CallGraph != nil && res.Callbacks != nil {
		fmt.Printf("analyzed %s: %d components, %d callbacks, %d call edges\n",
			res.App.Package, len(res.App.Components()), res.Callbacks.Total(), res.CallGraph.NumEdges())
	}
	if !opts.Query.IsAll() {
		fmt.Printf("sink query [%s]: reachability cone %d method(s), %d component(s) skipped\n",
			strings.Join(opts.Query.Sinks, ", "), res.Counters.ConeMethods, res.Counters.SkippedComponents)
	}
	if !res.Soundness.Empty() {
		fmt.Printf("reflection: %d site(s) resolved into call edges, %d unresolved\n",
			res.Soundness.ResolvedSites, len(res.Soundness.Unresolved))
		for _, u := range res.Soundness.Unresolved {
			fmt.Printf("    unresolved %s in %s (%s)\n", u.Call, u.Method, u.Reason)
		}
	}
	fmt.Print(res.Taint.Render())
	if res.Status != core.Complete {
		c := res.Counters
		fmt.Printf("analysis incomplete: %s (propagations %d, path edges %d, summaries %d, peak abstractions %d)\n",
			res.Status, c.Propagations, c.PathEdges, c.Summaries, c.PeakAbstractions)
		if res.Failure != nil {
			fmt.Fprintf(os.Stderr, "flowdroid: %v\n%s", res.Failure, res.Failure.Stack)
		}
	}
	if len(res.Degraded) > 0 {
		fmt.Printf("degraded configuration: %s\n", strings.Join(res.Degraded, ", "))
	}
	if *showPaths {
		for i, l := range res.Leaks() {
			fmt.Printf("\npath of leak %d:\n", i+1)
			for _, s := range l.Path() {
				fmt.Printf("    %s  (in %s)\n", s, s.Method())
			}
		}
	}
	if *showStats {
		st := res.Taint.Stats
		fmt.Printf("\nsetup %v, taint analysis %v (%d worker(s))\n", res.SetupTime, res.TaintTime, st.Workers)
		fmt.Printf("forward edges %d, backward edges %d, alias queries %d (%d gated), summaries %d, peak abstractions %d\n",
			st.ForwardEdges, st.BackwardEdges, st.AliasQueries, st.GatedAliasQueries, st.Summaries, st.PeakAbstractions)
		if c := res.Counters; c.ReflectionResolved > 0 || c.ReflectionUnresolved > 0 {
			fmt.Printf("reflection: %d site(s) resolved, %d unresolved\n", c.ReflectionResolved, c.ReflectionUnresolved)
		}
		if ss := st.Store; ss != nil {
			fmt.Printf("summary store: %d hit(s), %d miss(es), %d invalidated, %d corrupt; %d method(s) reused, %d explored (%.1f%% reuse), %d persisted\n",
				ss.Hits, ss.Misses, ss.Invalidated, ss.Corrupt,
				ss.MethodsReused, ss.MethodsExplored, 100*ss.ReuseRate(), ss.Persisted)
		}
		if len(res.Passes) > 0 {
			fmt.Printf("passes: %s\n", res.Passes)
		}
	}
	if *showMetrics {
		printMetrics(rec)
	}
	return exitCode(res)
}

// printMetrics dumps the recorder snapshot as indented JSON on stdout.
func printMetrics(rec *metrics.Recorder) {
	out, err := json.MarshalIndent(rec.Snapshot(), "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowdroid:", err)
		return
	}
	fmt.Printf("\nmetrics:\n%s\n", out)
}

// exitCode maps a result onto the documented exit codes: an incomplete
// run is an analysis error even when partial leaks were found, so that
// scripts never mistake a truncated report for a clean verdict.
func exitCode(res *core.Result) int {
	if res.Status != core.Complete {
		return exitAnalysis
	}
	if len(res.Leaks()) > 0 {
		return exitLeaks
	}
	return exitClean
}

// usageError prints the message plus the flag defaults and returns the
// usage exit code for the caller to return.
func usageError(msg string) int {
	fmt.Fprintln(os.Stderr, msg)
	flags.PrintDefaults()
	return exitUsage
}
