// Command flowdroid analyzes an Android app package (a directory or zip
// archive containing AndroidManifest.xml, res/layout/*.xml and .ir code
// files) and reports data flows from sensitive sources to sinks.
//
// Usage:
//
//	flowdroid [flags] <app-dir-or-zip>
//	flowdroid -insecurebank
//
// The default configuration matches the paper: access-path length 5, full
// lifecycle model, on-demand alias analysis with activation statements,
// taint wrapper enabled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"flowdroid/internal/core"
	"flowdroid/internal/insecurebank"
	"flowdroid/internal/lifecycle"
)

func main() {
	var (
		apLength    = flag.Int("ap-length", 5, "maximal access-path length")
		noAlias     = flag.Bool("no-alias", false, "disable the on-demand alias analysis")
		noAct       = flag.Bool("no-activation", false, "disable activation statements (Andromeda-style aliasing)")
		noLifecycle = flag.Bool("no-lifecycle", false, "model only component creation, not the full lifecycle")
		flat        = flag.Bool("flat-lifecycle", false, "single-pass lifecycle in canonical order")
		useCHA      = flag.Bool("cha", false, "use the CHA call graph instead of points-to")
		rulesFile   = flag.String("rules", "", "replace the built-in source/sink rules with this file")
		showPaths   = flag.Bool("paths", false, "print the reconstructed statement path of each leak")
		jsonOut     = flag.Bool("json", false, "emit the leak report as JSON")
		showStats   = flag.Bool("stats", false, "print solver statistics and timings")
		bank        = flag.Bool("insecurebank", false, "analyze the built-in InsecureBank app (RQ2)")
	)
	flag.Parse()

	opts := core.DefaultOptions()
	opts.Taint.APLength = *apLength
	opts.Taint.EnableAliasing = !*noAlias
	opts.Taint.EnableActivation = !*noAct
	opts.UseCHA = *useCHA
	if *noLifecycle {
		opts.Lifecycle.Mode = lifecycle.CreateOnly
	}
	if *flat {
		opts.Lifecycle.Mode = lifecycle.FlatLifecycle
	}
	if *rulesFile != "" {
		data, err := os.ReadFile(*rulesFile)
		if err != nil {
			fatal(err)
		}
		opts.SourceSinkRules = string(data)
	}

	var res *core.Result
	var err error
	switch {
	case *bank:
		res, err = core.AnalyzeFiles(insecurebank.Files, opts)
	case flag.NArg() == 1:
		path := flag.Arg(0)
		if strings.HasSuffix(path, ".zip") || strings.HasSuffix(path, ".apk") {
			res, err = core.AnalyzeZip(path, opts)
		} else {
			res, err = core.AnalyzeDir(path, opts)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: flowdroid [flags] <app-dir-or-zip>  (or -insecurebank)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Taint.Report()); err != nil {
			fatal(err)
		}
		if len(res.Leaks()) > 0 {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("analyzed %s: %d components, %d callbacks, %d call edges\n",
		res.App.Package, len(res.App.Components()), res.Callbacks.Total(), res.CallGraph.NumEdges())
	fmt.Print(res.Taint.Render())
	if *showPaths {
		for i, l := range res.Leaks() {
			fmt.Printf("\npath of leak %d:\n", i+1)
			for _, s := range l.Path() {
				fmt.Printf("    %s  (in %s)\n", s, s.Method())
			}
		}
	}
	if *showStats {
		st := res.Taint.Stats
		fmt.Printf("\nsetup %v, taint analysis %v\n", res.SetupTime, res.TaintTime)
		fmt.Printf("forward edges %d, backward edges %d, alias queries %d\n",
			st.ForwardEdges, st.BackwardEdges, st.AliasQueries)
	}
	if len(res.Leaks()) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flowdroid:", err)
	os.Exit(2)
}
