// Command dummymain prints the generated dummy main method of an app —
// the lifecycle automaton of Figure 1 — together with the callbacks
// discovered per component. With no argument it uses the paper's Listing
// 1 example app.
//
// Usage:
//
//	dummymain [app-dir-or-zip]
//	dummymain -flat      # single-pass lifecycle instead of the automaton
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"flowdroid/internal/apk"
	"flowdroid/internal/callbacks"
	"flowdroid/internal/ir"
	"flowdroid/internal/lifecycle"
	"flowdroid/internal/testapps"
)

func main() {
	flat := flag.Bool("flat", false, "generate the single-pass (flat) lifecycle")
	flag.Parse()

	var app *apk.App
	var err error
	if flag.NArg() == 1 {
		path := flag.Arg(0)
		if strings.HasSuffix(path, ".zip") || strings.HasSuffix(path, ".apk") {
			app, err = apk.LoadZip(path)
		} else {
			app, err = apk.LoadDir(path)
		}
	} else {
		fmt.Println("(no app given: using the paper's Listing 1 example)")
		app, err = apk.LoadFiles(testapps.LeakageApp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dummymain:", err)
		os.Exit(2)
	}

	cbs := callbacks.Discover(context.Background(), app)
	for _, comp := range app.Components() {
		fmt.Printf("component %s (%s):\n", comp.Class, comp.Kind)
		for _, cb := range cbs.CallbacksOf(comp.Class) {
			origin := "imperative"
			switch cbs.Origins[cb] {
			case callbacks.XMLOrigin:
				origin = "layout XML"
			case callbacks.OverrideOrigin:
				origin = "framework override"
			}
			fmt.Printf("    callback %s  [%s]\n", cb, origin)
		}
	}

	opts := lifecycle.DefaultOptions()
	if *flat {
		opts.Mode = lifecycle.FlatLifecycle
	}
	entry, err := lifecycle.Generate(app, cbs, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dummymain:", err)
		os.Exit(2)
	}
	fmt.Println()
	fmt.Print(ir.PrintMethod(entry))
}
