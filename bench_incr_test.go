package flowdroid_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"flowdroid/internal/appgen"
	"flowdroid/internal/core"
)

// BenchmarkIncrementalTaint quantifies warm re-analysis over the
// persistent summary store: a corpus is analyzed cold into a store, then
// every app receives a simulated update (2% of methods mutated) and is
// re-analyzed warm against the same store. The contract is asserted
// in-line: the warm reports must be byte-identical to a fresh cold run
// of the updated corpus, and at least 90% of the analyzable methods must
// come out of the store instead of being re-explored. The result is
// persisted as BENCH_incr.json (schema-checked by scripts/checkbench in
// ci.sh).

const benchIncrApps = 8

// benchIncrFraction is the simulated update's churn: 2% of methods per
// app get a body change.
const benchIncrFraction = 0.02

type benchIncrRun struct {
	WallMS          float64 `json:"wall_ms"`
	Propagations    int     `json:"propagations"`
	Leaks           int     `json:"leaks"`
	SummaryHits     int     `json:"summary_hits"`
	SummaryMisses   int     `json:"summary_misses"`
	Invalidated     int     `json:"invalidated"`
	MethodsReused   int     `json:"methods_reused"`
	MethodsExplored int     `json:"methods_explored"`
	Persisted       int     `json:"persisted"`
}

type benchIncrReport struct {
	Bench           string       `json:"bench"`
	Profile         string       `json:"profile"`
	Apps            int          `json:"apps"`
	MutatedFraction float64      `json:"mutated_fraction"`
	MutatedMethods  int          `json:"mutated_methods"`
	GOMAXPROCS      int          `json:"gomaxprocs"`
	NumCPU          int          `json:"num_cpu"`
	Cold            benchIncrRun `json:"cold"`
	Warm            benchIncrRun `json:"warm"`
	// ReuseRate is warm methods_reused / (methods_reused +
	// methods_explored): the fraction of analyzable methods served from
	// the store after the update.
	ReuseRate        float64 `json:"reuse_rate"`
	ReportsIdentical bool    `json:"reports_identical"`
	Note             string  `json:"note"`
}

func BenchmarkIncrementalTaint(b *testing.B) {
	apps := appgen.GenerateCorpus(appgen.Play, benchIncrApps, 1)

	// updated is the post-update corpus: every app with ~2% of its
	// methods mutated (a benign fresh-local assignment — data flow, and
	// therefore the leak report, is unchanged; the mutated methods' and
	// their transitive callers' content hashes are not).
	type upd struct {
		name  string
		files map[string]string
	}
	// The mutation seeds are fixed so the deterministic stream touches
	// both live and dead methods: some updates invalidate stored
	// summaries (their hash cones include taint-visited methods), the
	// rest land in unreachable noise code and cost nothing.
	updated := make([]upd, len(apps))
	mutatedMethods := 0
	for i, app := range apps {
		files, n := appgen.MutateMethods(app.Files, benchIncrFraction, int64(i)+2)
		updated[i] = upd{name: app.Name, files: files}
		mutatedMethods += n
	}
	if mutatedMethods == 0 {
		b.Fatal("mutation produced no changed methods")
	}

	// analyzeAll runs a corpus of file sets, optionally against a summary
	// store, returning aggregate counters and the concatenated canonical
	// reports.
	analyzeAll := func(sets []upd, summaryDir string) (benchIncrRun, []byte) {
		var agg benchIncrRun
		var reports bytes.Buffer
		start := time.Now()
		for _, app := range sets {
			opts := core.DefaultOptions()
			opts.SummaryDir = summaryDir
			res, err := core.AnalyzeFiles(context.Background(), app.files, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Status != core.Complete {
				b.Fatalf("app %s status %v", app.name, res.Status)
			}
			agg.Propagations += res.Counters.Propagations
			agg.SummaryHits += res.Counters.SummaryHits
			agg.SummaryMisses += res.Counters.SummaryMisses
			agg.Invalidated += res.Counters.SummaryInvalidated
			agg.MethodsReused += res.Counters.MethodsReused
			agg.MethodsExplored += res.Counters.MethodsExplored
			agg.Persisted += res.Counters.SummariesPersisted
			agg.Leaks += len(res.Taint.DistinctSourceSinkPairs())
			js, err := res.Taint.CanonicalJSON()
			if err != nil {
				b.Fatal(err)
			}
			reports.Write(js)
		}
		agg.WallMS = float64(time.Since(start).Microseconds()) / 1000
		return agg, reports.Bytes()
	}

	asUpd := func(apps []appgen.App) []upd {
		out := make([]upd, len(apps))
		for i, app := range apps {
			out[i] = upd{name: app.Name, files: app.Files}
		}
		return out
	}

	var cold, warm benchIncrRun
	var reuse float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := b.TempDir() // fresh store per iteration: cold must stay cold

		// Cold run of the original corpus populates the store.
		var coldRep []byte
		cold, coldRep = analyzeAll(asUpd(apps), dir)
		if cold.Persisted == 0 {
			b.Fatal("cold run persisted no summaries")
		}
		_ = coldRep

		// Warm run of the updated corpus against the populated store.
		var warmRep []byte
		warm, warmRep = analyzeAll(updated, dir)
		if warm.SummaryHits == 0 {
			b.Fatal("warm run hit no stored summaries")
		}
		if warm.Invalidated == 0 {
			b.Fatal("the update stream invalidated no summaries: the mutations all landed in dead code")
		}

		// Oracle: a fresh cold run of the updated corpus with no store.
		_, baseRep := analyzeAll(updated, "")
		if !bytes.Equal(warmRep, baseRep) {
			b.Fatal("warm reports differ from the cold re-analysis of the updated corpus")
		}

		total := warm.MethodsReused + warm.MethodsExplored
		if total == 0 {
			b.Fatal("warm run analyzed no methods")
		}
		reuse = float64(warm.MethodsReused) / float64(total)
		if reuse < 0.9 {
			b.Fatalf("summary reuse %.3f below the 0.9 floor (%d reused, %d explored)",
				reuse, warm.MethodsReused, warm.MethodsExplored)
		}
	}
	b.StopTimer()

	b.ReportMetric(100*reuse, "summary-reuse%")
	b.ReportMetric(float64(warm.SummaryHits), "summary-hits")

	rep := benchIncrReport{
		Bench:            "BenchmarkIncrementalTaint",
		Profile:          appgen.Play.Name,
		Apps:             benchIncrApps,
		MutatedFraction:  benchIncrFraction,
		MutatedMethods:   mutatedMethods,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
		Cold:             cold,
		Warm:             warm,
		ReuseRate:        reuse,
		ReportsIdentical: true, // asserted above; a false run b.Fatals
		Note: fmt.Sprintf(
			"after mutating %d method(s) (%.0f%% per app) across %d apps, the warm run reused %.1f%% of analyzable methods from the store (%d hits, %d invalidated) and its reports were verified byte-identical to a cold re-analysis of the updated corpus",
			mutatedMethods, 100*benchIncrFraction, benchIncrApps, 100*reuse, warm.SummaryHits, warm.Invalidated),
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_incr.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
