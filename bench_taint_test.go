package flowdroid_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"flowdroid/internal/appgen"
	"flowdroid/internal/core"
)

// BenchmarkSmokeTaint measures the parallel taint solver against the
// sequential drain on an oversized appgen corpus and persists the result
// as BENCH_taint.json (schema-checked by scripts/checkbench in ci.sh), so
// the bench trajectory survives the run instead of scrolling away on
// stdout.
//
// The corpus is a stress-derived fixture enlarged beyond the resilience
// tests' profile: big enough that per-app solve time dominates setup,
// which is what a worker pool can actually attack on a multi-core host.

// benchTaintWorkers is the parallel pool size the speedup is quoted for.
const benchTaintWorkers = 8

// benchTaintApps is the corpus size; small enough for -benchtime=1x
// smoke runs, large enough to keep the solvers busy.
const benchTaintApps = 4

type benchTaintRun struct {
	Workers      int     `json:"workers"`
	WallMS       float64 `json:"wall_ms"`
	Propagations int     `json:"propagations"`
	Leaks        int     `json:"leaks"`
	// Allocs is the heap allocation count (runtime Mallocs delta) of the
	// corpus pass — the memory-churn axis of the solver trajectory.
	Allocs uint64 `json:"allocs"`
}

type benchTaintReport struct {
	Bench      string          `json:"bench"`
	Profile    string          `json:"profile"`
	Apps       int             `json:"apps"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Runs       []benchTaintRun `json:"runs"`
	// Speedup is sequential wall time over parallel wall time.
	Speedup float64 `json:"speedup"`
	// Note explains the speedup (or its absence) on this host.
	Note string `json:"note"`
}

// benchTaintProfile derives the bench fixture from the stress profile:
// substantially more helper classes and noise so the propagation loop,
// not pipeline setup, dominates.
func benchTaintProfile() appgen.Profile {
	p := appgen.Stress
	p.Name = "benchtaint"
	p.Helpers = appgen.MinMax(40, 40)
	p.NoiseMethods = appgen.MinMax(10, 10)
	p.NoiseStmts = appgen.MinMax(20, 30)
	return p
}

func BenchmarkSmokeTaint(b *testing.B) {
	apps := appgen.GenerateCorpus(benchTaintProfile(), benchTaintApps, 7)

	// analyzeAll runs the whole corpus at one worker count and carrier
	// mode, returning wall time, solver counters, the heap allocation
	// count, and the concatenated canonical reports for the equivalence
	// assertions.
	analyzeAll := func(workers int, carriers bool) corpusPass {
		opts := core.DefaultOptions()
		opts.Taint.Workers = workers
		opts.Taint.StringCarriers = carriers
		var p corpusPass
		var reports bytes.Buffer
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		allocs0 := ms.Mallocs
		start := time.Now()
		for _, app := range apps {
			res, err := core.AnalyzeFiles(context.Background(), app.Files, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Status != core.Complete {
				b.Fatalf("workers=%d: app %s status %v", workers, app.Name, res.Status)
			}
			p.props += res.Counters.Propagations
			p.leaks += len(res.Leaks())
			p.alias += res.Taint.Stats.AliasQueries
			p.gated += res.Taint.Stats.GatedAliasQueries
			js, err := res.Taint.CanonicalJSON()
			if err != nil {
				b.Fatal(err)
			}
			reports.Write(js)
		}
		p.wall = time.Since(start)
		runtime.ReadMemStats(&ms)
		p.allocs = ms.Mallocs - allocs0
		p.reports = reports.Bytes()
		return p
	}

	var seq, par benchTaintRun
	var on, off corpusPass
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		on = analyzeAll(1, true)
		parP := analyzeAll(benchTaintWorkers, true)
		off = analyzeAll(1, false)
		if !bytes.Equal(on.reports, parP.reports) {
			b.Fatalf("leak reports differ between 1 and %d workers", benchTaintWorkers)
		}
		if on.props != parP.props {
			b.Fatalf("propagations differ between 1 and %d workers: %d vs %d",
				benchTaintWorkers, on.props, parP.props)
		}
		if !bytes.Equal(on.reports, off.reports) {
			b.Fatal("leak reports differ between carriers on and off")
		}
		seq = benchTaintRun{Workers: 1, WallMS: float64(on.wall.Microseconds()) / 1000, Propagations: on.props, Leaks: on.leaks, Allocs: on.allocs}
		par = benchTaintRun{Workers: benchTaintWorkers, WallMS: float64(parP.wall.Microseconds()) / 1000, Propagations: parP.props, Leaks: parP.leaks, Allocs: parP.allocs}
	}
	b.StopTimer()

	speedup := 0.0
	if par.WallMS > 0 {
		speedup = seq.WallMS / par.WallMS
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(seq.Leaks), "leaks")
	b.ReportMetric(float64(seq.Allocs), "allocs/op")

	rep := benchTaintReport{
		Bench:      "BenchmarkSmokeTaint",
		Profile:    "benchtaint (stress-derived, enlarged)",
		Apps:       benchTaintApps,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Runs:       []benchTaintRun{seq, par},
		Speedup:    speedup,
		Note:       benchTaintNote(speedup),
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_taint.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}

	// The carriers-on/off comparison is its own artifact: the sequential
	// pass of each mode, the alias-search and allocation deltas, and the
	// report-identity verdict.
	srep := benchStringsReport{
		Bench:            "BenchmarkSmokeTaint/StringCarriers",
		Profile:          "benchtaint (stress-derived, enlarged)",
		Apps:             benchTaintApps,
		Workers:          1,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
		On:               modeOf(on, true),
		Off:              modeOf(off, false),
		ReportsIdentical: bytes.Equal(on.reports, off.reports),
	}
	if off.alias > 0 {
		srep.AliasReduction = 1 - float64(on.alias)/float64(off.alias)
	}
	if off.allocs > 0 {
		srep.AllocReduction = 1 - float64(on.allocs)/float64(off.allocs)
	}
	srep.Note = fmt.Sprintf(
		"string carriers gated %d of %d receiver alias searches (%.0f%% fewer backward queries); sequential allocation delta %+.2f%% between modes (the solver allocation diet applies to both, so its win shows against the pre-diet ratchet, not here); canonical reports byte-identical",
		on.gated, off.alias, 100*srep.AliasReduction, -100*srep.AllocReduction)
	sout, err := json.MarshalIndent(srep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_strings.json", append(sout, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// corpusPass aggregates one full-corpus analysis pass.
type corpusPass struct {
	wall    time.Duration
	props   int
	leaks   int
	alias   int
	gated   int
	allocs  uint64
	reports []byte
}

type benchStringsMode struct {
	Carriers          bool    `json:"carriers"`
	WallMS            float64 `json:"wall_ms"`
	AliasQueries      int     `json:"alias_queries"`
	GatedAliasQueries int     `json:"gated_alias_queries"`
	Allocs            uint64  `json:"allocs"`
	Leaks             int     `json:"leaks"`
}

type benchStringsReport struct {
	Bench      string           `json:"bench"`
	Profile    string           `json:"profile"`
	Apps       int              `json:"apps"`
	Workers    int              `json:"workers"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	On         benchStringsMode `json:"on"`
	Off        benchStringsMode `json:"off"`
	// AliasReduction and AllocReduction are 1 - on/off: the fraction of
	// backward alias queries (resp. heap allocations) the fast path saved.
	AliasReduction   float64 `json:"alias_reduction"`
	AllocReduction   float64 `json:"alloc_reduction"`
	ReportsIdentical bool    `json:"reports_identical"`
	Note             string  `json:"note"`
}

func modeOf(p corpusPass, carriers bool) benchStringsMode {
	return benchStringsMode{
		Carriers:          carriers,
		WallMS:            float64(p.wall.Microseconds()) / 1000,
		AliasQueries:      p.alias,
		GatedAliasQueries: p.gated,
		Allocs:            p.allocs,
		Leaks:             p.leaks,
	}
}

// benchTaintNote records why the measured speedup is what it is, so the
// persisted artifact is interpretable without knowing the host.
func benchTaintNote(speedup float64) string {
	switch {
	case speedup >= 1.5:
		return fmt.Sprintf("parallel solver reached %.2fx over sequential at %d workers", speedup, benchTaintWorkers)
	case runtime.NumCPU() < 2 || runtime.GOMAXPROCS(0) < 2:
		return fmt.Sprintf(
			"host exposes %d CPU(s) with GOMAXPROCS=%d: a wall-clock speedup is physically unattainable here — the %d workers can only interleave on one core and the measured ratio (%.2fx) reflects queue/lock overhead, not the design. Cross-worker-count equivalence (identical reports and propagation counts) was still verified by this bench and by the equivalence test suites.",
			runtime.NumCPU(), runtime.GOMAXPROCS(0), benchTaintWorkers, speedup)
	default:
		return fmt.Sprintf("speedup %.2fx below the 1.5x target despite %d CPUs: workload may still be setup-dominated on this host", speedup, runtime.NumCPU())
	}
}
